//! The Paillier additively homomorphic cryptosystem (§4.1).
//!
//! FederatedScope ships Paillier for cross-silo FL: clients encrypt model
//! updates, the server aggregates *ciphertexts* (addition under encryption)
//! and only the key holder can decrypt the sum. Implemented on the in-crate
//! bignum — key sizes used in tests are small
//! (128–256 bit) to keep test time low — real deployments need ≥ 2048-bit
//! keys and a hardened bignum.
//!
//! Uses the standard `g = n + 1` variant: `Enc(m, r) = (1 + m n) r^n mod n²`,
//! `Dec(c) = L(c^λ mod n²) · λ⁻¹ mod n` with `L(x) = (x − 1)/n`.

use crate::bignum::BigUint;
use rand::Rng;

/// Paillier public key.
#[derive(Clone, Debug)]
pub struct PublicKey {
    /// Modulus `n = p q`.
    pub n: BigUint,
    n_squared: BigUint,
}

/// Paillier private key.
#[derive(Clone, Debug)]
pub struct PrivateKey {
    lambda: BigUint,
    mu: BigUint,
    public: PublicKey,
}

/// A Paillier ciphertext (value in `Z_{n²}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext(BigUint);

/// Generates a Paillier key pair with an `bits`-bit modulus.
pub fn keygen(bits: usize, rng: &mut impl Rng) -> (PublicKey, PrivateKey) {
    assert!(bits >= 32, "modulus too small");
    loop {
        let p = BigUint::gen_prime(bits / 2, rng);
        let q = BigUint::gen_prime(bits - bits / 2, rng);
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        let one = BigUint::one();
        let lambda = p.sub(&one).lcm(&q.sub(&one));
        // mu = lambda^{-1} mod n (g = n+1 variant)
        let Some(mu) = lambda.mod_inverse(&n) else {
            continue;
        };
        let n_squared = n.mul(&n);
        let public = PublicKey {
            n: n.clone(),
            n_squared,
        };
        let private = PrivateKey {
            lambda,
            mu,
            public: public.clone(),
        };
        return (public, private);
    }
}

impl PublicKey {
    /// Encrypts `m` (must satisfy `m < n`) with fresh randomness.
    pub fn encrypt(&self, m: &BigUint, rng: &mut impl Rng) -> Ciphertext {
        assert!(m < &self.n, "plaintext out of range");
        // r in [1, n) with gcd(r, n) = 1
        let r = loop {
            let r = BigUint::random_below(&self.n, rng);
            if !r.is_zero() && r.gcd(&self.n) == BigUint::one() {
                break r;
            }
        };
        // (1 + m n) mod n^2
        let gm = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let rn = r.mod_pow(&self.n, &self.n_squared);
        Ciphertext(gm.mod_mul(&rn, &self.n_squared))
    }

    /// Encrypts a `u64`.
    pub fn encrypt_u64(&self, m: u64, rng: &mut impl Rng) -> Ciphertext {
        self.encrypt(&BigUint::from_u64(m), rng)
    }

    /// Homomorphic addition: `Dec(add(c1, c2)) = m1 + m2 (mod n)`.
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        Ciphertext(c1.0.mod_mul(&c2.0, &self.n_squared))
    }

    /// Homomorphic scalar multiplication: `Dec(mul_scalar(c, k)) = k m (mod n)`.
    pub fn mul_scalar(&self, c: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext(c.0.mod_pow(k, &self.n_squared))
    }
}

impl PrivateKey {
    /// The matching public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Decrypts a ciphertext.
    pub fn decrypt(&self, c: &Ciphertext) -> BigUint {
        let n = &self.public.n;
        let x = c.0.mod_pow(&self.lambda, &self.public.n_squared);
        // L(x) = (x - 1) / n
        let l = x.sub(&BigUint::one()).div_rem(n).0;
        l.mod_mul(&self.mu, n)
    }

    /// Decrypts to `u64` (plaintext must fit).
    pub fn decrypt_u64(&self, c: &Ciphertext) -> u64 {
        self.decrypt(c).to_u64().expect("plaintext exceeds u64")
    }
}

/// Fixed-point encoding of an `f32` into `Z_n` with sign handling: positive
/// values map to `round(v * SCALE)`, negatives to `n - round(|v| * SCALE)`.
pub const FIXED_SCALE: f64 = 65_536.0;

/// Encodes a float for Paillier aggregation.
pub fn encode_f32(v: f32, n: &BigUint) -> BigUint {
    let scaled = (v.abs() as f64 * FIXED_SCALE).round() as u64;
    let mag = BigUint::from_u64(scaled);
    if v < 0.0 && !mag.is_zero() {
        // (a tiny negative whose magnitude rounds to 0 must encode as 0,
        // not as n, which would fail encrypt's range check)
        n.sub(&mag)
    } else {
        mag
    }
}

/// Decodes the homomorphic sum of `count` encoded floats.
///
/// Values whose residue exceeds `n/2` are interpreted as negative.
pub fn decode_f32(enc: &BigUint, n: &BigUint) -> f32 {
    let half = n.shr(1);
    if enc > &half {
        let mag = n.sub(enc);
        -(mag.to_u64().expect("magnitude fits") as f64 / FIXED_SCALE) as f32
    } else {
        (enc.to_u64().expect("magnitude fits") as f64 / FIXED_SCALE) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> (PublicKey, PrivateKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let (pk, sk) = keygen(128, &mut rng);
        (pk, sk, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (pk, sk, mut rng) = keys();
        for m in [0u64, 1, 42, 1_000_000, u32::MAX as u64] {
            let c = pk.encrypt_u64(m, &mut rng);
            assert_eq!(sk.decrypt_u64(&c), m, "roundtrip {m}");
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (pk, _sk, mut rng) = keys();
        let c1 = pk.encrypt_u64(5, &mut rng);
        let c2 = pk.encrypt_u64(5, &mut rng);
        assert_ne!(c1, c2, "semantic security requires fresh randomness");
    }

    #[test]
    fn homomorphic_addition() {
        let (pk, sk, mut rng) = keys();
        let c1 = pk.encrypt_u64(100, &mut rng);
        let c2 = pk.encrypt_u64(23, &mut rng);
        assert_eq!(sk.decrypt_u64(&pk.add(&c1, &c2)), 123);
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let (pk, sk, mut rng) = keys();
        let c = pk.encrypt_u64(7, &mut rng);
        let ck = pk.mul_scalar(&c, &BigUint::from_u64(9));
        assert_eq!(sk.decrypt_u64(&ck), 63);
    }

    #[test]
    fn aggregation_of_many_ciphertexts() {
        let (pk, sk, mut rng) = keys();
        let values: Vec<u64> = (1..=10).collect();
        let mut acc = pk.encrypt_u64(0, &mut rng);
        for &v in &values {
            acc = pk.add(&acc, &pk.encrypt_u64(v, &mut rng));
        }
        assert_eq!(sk.decrypt_u64(&acc), 55);
    }

    #[test]
    fn float_encoding_handles_signs() {
        let (pk, sk, mut rng) = keys();
        // sum of +1.5 and -0.75 under encryption
        let a = encode_f32(1.5, &pk.n);
        let b = encode_f32(-0.75, &pk.n);
        let ca = pk.encrypt(&a, &mut rng);
        let cb = pk.encrypt(&b, &mut rng);
        let sum = sk.decrypt(&pk.add(&ca, &cb));
        let v = decode_f32(&sum.rem(&pk.n), &pk.n);
        assert!((v - 0.75).abs() < 1e-3, "decoded {v}");
        // purely negative sum
        let c = encode_f32(-2.25, &pk.n);
        let cc = pk.encrypt(&c, &mut rng);
        let v = decode_f32(&sk.decrypt(&cc), &pk.n);
        assert!((v + 2.25).abs() < 1e-3, "decoded {v}");
    }

    #[test]
    #[should_panic(expected = "plaintext out of range")]
    fn oversized_plaintext_rejected() {
        let (pk, _sk, mut rng) = keys();
        let too_big = pk.n.clone();
        let _ = pk.encrypt(&too_big, &mut rng);
    }
}
