//! A small self-contained Rust lexer.
//!
//! The lints only need a faithful *token stream* — identifiers, punctuation,
//! literals, and comments with line numbers — not a parse tree, so this
//! scanner deliberately avoids a real grammar. What it must get exactly
//! right is what *isn't* code: string literals (including raw and byte
//! strings), char literals vs. lifetimes, and nested block comments. A
//! `thread_rng` inside a doc comment or a format string must never trip a
//! lint, and a pragma inside a string must never suppress one.

/// Token classes. Punctuation is emitted one character at a time; lints
/// match multi-character operators (`::`) as token sequences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (includes raw identifiers, `r#type`).
    Ident,
    /// Numeric literal, including any float part and type suffix.
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// One punctuation character.
    Punct,
    /// `// …` comment, text excludes the newline.
    LineComment,
    /// `/* … */` comment, possibly spanning lines; text includes delimiters'
    /// interior only.
    BlockComment,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for comments: interior text; for strings: raw contents
    /// excluding delimiters).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Tokenizes `src`. Unterminated literals/comments are closed at EOF rather
/// than erroring: the analyzer must keep scanning a broken tree.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line);
                }
                'r' | 'b' if self.raw_string_lookahead() => {
                    self.raw_string(line);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // raw identifier r#type
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.lifetime_or_char(line),
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// True when the cursor sits on `r"`, `r#…#"`, `br"`, or `br#…#"`.
    fn raw_string_lookahead(&self) -> bool {
        let mut i = 0;
        if self.peek(0) == Some('b') {
            i = 1;
        }
        if self.peek(i) != Some('r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self, line: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // candidate close: `"` followed by `hashes` hashes
                for i in 0..hashes {
                    if self.peek(1 + i) != Some('#') {
                        text.push(c);
                        self.bump();
                        continue 'outer;
                    }
                }
                self.bump();
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_lit(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '\'' {
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Char, text, line);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime/label): a lifetime is
    /// `'` + ident not closed by another `'`.
    fn lifetime_or_char(&mut self, line: u32) {
        let one = self.peek(1);
        let two = self.peek(2);
        let is_lifetime = match one {
            Some(c) if is_ident_start(c) => two != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.char_lit(line);
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    /// Numbers: digits, an optional fraction (only when `.` is followed by a
    /// digit, so `1..2` stays three tokens), exponent, and type suffix.
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let fraction = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if !(c.is_ascii_alphanumeric() || c == '_' || fraction) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Number, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = foo(1.5f32, 0..2);");
        assert!(toks.contains(&(TokKind::Ident, "foo".into())));
        assert!(toks.contains(&(TokKind::Number, "1.5f32".into())));
        // `0..2` must not glom into one number
        assert!(toks.contains(&(TokKind::Number, "0".into())));
        assert!(toks.contains(&(TokKind::Number, "2".into())));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "thread_rng()"; call();"#);
        assert!(toks
            .iter()
            .all(|t| !(t.kind == TokKind::Ident && t.text == "thread_rng")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("thread_rng")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"let s = r#"quote " inside"#; x"###);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "quote \" inside");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "x"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.contains("inner"));
        assert_eq!(
            toks[1],
            Tok {
                kind: TokKind::Ident,
                text: "code".into(),
                line: 1
            }
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c /* x\ny */ d");
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 3);
        assert_eq!(find("d"), 4);
    }

    #[test]
    fn comments_keep_text_for_pragmas() {
        let toks = lex("// fsa::allow(FSA001, test seam)\nx();");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("fsa::allow(FSA001"));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = lex(r##"let b = b"bytes"; let r = r#type; let c = b'x';"##);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "bytes"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "type"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
    }
}
