//! Fault-tolerance integration tests: dropout handling, reconnects, and the
//! per-class `DistributedError` taxonomy, on both the in-process bus and the
//! TCP backend.

use fedscope::core::config::{DropoutPolicy, FlConfig};
use fedscope::core::course::CourseBuilder;
use fedscope::core::distributed::{
    distributed_report, run_distributed_tcp_with, run_distributed_with, BusRunOptions,
    DistributedError, TcpRunOptions,
};
use fedscope::core::{Event, StandaloneRunner};
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::net::tcp::ReconnectPolicy;
use fedscope::net::{FaultPlan, FaultSpec, Message, MessageKind, Payload, SERVER_ID};
use fedscope::tensor::model::logistic_regression;
use fedscope::verify::VerifyMode;
use std::time::Duration;

/// A small course with `n` clients, all sampled every round.
fn course(n: usize, seed: u64) -> StandaloneRunner {
    let data = twitter_like(&TwitterConfig {
        num_clients: n,
        per_client: 12,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 3,
        concurrency: n,
        seed,
        ..Default::default()
    };
    CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build()
}

const BUDGET: Duration = Duration::from_secs(60);

// ---------------------------------------------------------------------------
// dropout handling
// ---------------------------------------------------------------------------

#[test]
fn bus_course_survives_midcourse_dropouts() {
    let runner = course(6, 21);
    let clients: Vec<_> = runner.clients.into_values().collect();
    // clients 2 and 5 deliver their join + round-1 update, then their third
    // frame (the round-2 update) kills the link mid-course
    let faults = FaultPlan::new(21)
        .with(2, FaultSpec::dies_after(2))
        .with(5, FaultSpec::dies_after(2));
    let opts = BusRunOptions {
        faults: Some(faults),
        ..Default::default()
    };
    let server = run_distributed_with(runner.server, clients, BUDGET, opts)
        .expect("survivor policy must carry the course to the end");
    assert_eq!(server.state.round, 3, "course must finish all rounds");
    // both casualties are recorded; their order races across worker threads
    let mut recorded = server.state.dropouts.clone();
    recorded.sort_unstable();
    assert_eq!(recorded, vec![2, 5], "dropouts must be recorded");
    // accuracy is computed over survivors only: the dead clients never report
    assert_eq!(server.state.client_reports.len(), 4);
    assert!(!server.state.client_reports.contains_key(&2));
    assert!(!server.state.client_reports.contains_key(&5));
    let report = distributed_report(&server);
    let mut reported = report.dropouts.clone();
    reported.sort_unstable();
    assert_eq!(reported, vec![2, 5]);
    assert_eq!(report.rounds, 3);
}

#[test]
fn tcp_course_survives_midcourse_dropouts() {
    let runner = course(5, 22);
    let clients: Vec<_> = runner.clients.into_values().collect();
    let opts = TcpRunOptions {
        faults: Some(FaultPlan::new(22).with(3, FaultSpec::dies_after(2))),
        ..Default::default()
    };
    let server = run_distributed_tcp_with(runner.server, clients, BUDGET, opts)
        .expect("survivor policy must carry the course to the end");
    assert_eq!(server.state.round, 3);
    assert_eq!(server.state.dropouts, vec![3]);
    assert_eq!(server.state.client_reports.len(), 4);
    assert!(!server.state.client_reports.contains_key(&3));
}

#[test]
fn dropout_policy_fail_aborts_the_course() {
    let mut runner = course(4, 23);
    runner.server.state.cfg.dropout = DropoutPolicy::Fail;
    let clients: Vec<_> = runner.clients.into_values().collect();
    let opts = BusRunOptions {
        faults: Some(FaultPlan::new(23).with(1, FaultSpec::dies_after(2))),
        ..Default::default()
    };
    let Err(err) = run_distributed_with(runner.server, clients, BUDGET, opts) else {
        panic!("Fail policy must abort on the first dropout")
    };
    assert!(
        matches!(err, DistributedError::PeerDisconnected(1)),
        "wrong error: {err}"
    );
}

#[test]
fn tcp_flaky_client_rejoins_and_reconnects_are_counted() {
    let runner = course(4, 24);
    let clients: Vec<_> = runner.clients.into_values().collect();
    let opts = TcpRunOptions {
        faults: Some(FaultPlan::new(24).with(2, FaultSpec::dies_after(2))),
        reconnect: Some(ReconnectPolicy::default()),
        ..Default::default()
    };
    let server = run_distributed_tcp_with(runner.server, clients, BUDGET, opts)
        .expect("rejoining client must not sink the course");
    assert_eq!(server.state.round, 3);
    assert!(
        server.state.reconnects >= 1,
        "the flaky client must have rejoined at least once"
    );
    assert!(
        server.state.dropouts.contains(&2),
        "each outage is recorded as a dropout"
    );
    // the three healthy clients always report; the flaky one may or may not
    // get its final report through, depending on where its link dies
    assert!(server.state.client_reports.len() >= 3);
    let report = distributed_report(&server);
    assert_eq!(report.reconnects, server.state.reconnects);
}

// ---------------------------------------------------------------------------
// error taxonomy: each failure class surfaces as its own variant
// ---------------------------------------------------------------------------

#[test]
fn occupied_address_surfaces_as_bind_error() {
    let blocker = std::net::TcpListener::bind("127.0.0.1:0").expect("bind blocker");
    let addr = blocker.local_addr().expect("blocker addr");
    let runner = course(2, 25);
    let clients: Vec<_> = runner.clients.into_values().collect();
    let opts = TcpRunOptions {
        addr: Some(addr),
        ..Default::default()
    };
    let Err(err) = run_distributed_tcp_with(runner.server, clients, BUDGET, opts) else {
        panic!("binding an occupied port must fail")
    };
    assert!(
        matches!(err, DistributedError::Bind(_)),
        "wrong error: {err}"
    );
}

#[test]
fn client_panic_surfaces_with_id_and_detail() {
    let mut runner = course(3, 26);
    runner.server.state.cfg.verify = VerifyMode::Skip;
    let mut clients: Vec<_> = runner.clients.into_values().collect();
    let victim = clients
        .iter_mut()
        .find(|c| c.state.id == 2)
        .expect("client 2 exists");
    victim.registry_mut().register(
        Event::Message(MessageKind::ModelParams),
        "poison",
        vec![],
        Box::new(|_, _, _| panic!("injected handler fault")),
    );
    let Err(err) = run_distributed_with(runner.server, clients, BUDGET, BusRunOptions::default())
    else {
        panic!("a panicking handler must abort the course")
    };
    match err {
        DistributedError::ClientPanic { id, detail } => {
            assert_eq!(id, 2);
            assert!(
                detail.contains("injected handler fault"),
                "panic payload must be preserved, got: {detail}"
            );
        }
        other => panic!("expected ClientPanic, got: {other}"),
    }
}

#[test]
fn silent_client_surfaces_as_true_timeout() {
    let runner = course(3, 27);
    let clients: Vec<_> = runner.clients.into_values().collect();
    // client 1's link stays up but loses every frame: its join never arrives,
    // the course never starts, and the only truthful outcome is Timeout
    let opts = BusRunOptions {
        faults: Some(FaultPlan::new(27).with(1, FaultSpec::lossy(1.0))),
        ..Default::default()
    };
    let Err(err) = run_distributed_with(runner.server, clients, Duration::from_secs(2), opts)
    else {
        panic!("a stalled course must time out")
    };
    assert!(
        matches!(err, DistributedError::Timeout),
        "wrong error: {err}"
    );
}

#[test]
fn rogue_peer_garbage_surfaces_as_codec_error() {
    // reserve a port, free it, and tell the hub to bind it so a rogue socket
    // can find the server
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);
    let rogue = std::thread::spawn(move || {
        use std::io::Write;
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match std::net::TcpStream::connect(addr) {
                Ok(mut s) => {
                    let mut frame = 16u32.to_le_bytes().to_vec();
                    frame.extend_from_slice(&[0xFF; 16]);
                    let _ = s.write_all(&frame);
                    // hold the socket open so the frame is read before EOF
                    std::thread::sleep(Duration::from_secs(2));
                    return;
                }
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("rogue peer never connected: {e}"),
            }
        }
    });
    let runner = course(3, 28);
    let clients: Vec<_> = runner.clients.into_values().collect();
    let opts = TcpRunOptions {
        addr: Some(addr),
        ..Default::default()
    };
    let Err(err) = run_distributed_tcp_with(runner.server, clients, Duration::from_secs(30), opts)
    else {
        panic!("undecodable bytes must abort the course")
    };
    assert!(
        matches!(err, DistributedError::Codec(_)),
        "wrong error: {err}"
    );
    rogue.join().expect("rogue thread");
}

// ---------------------------------------------------------------------------
// bus snapshot-bug regression: client-to-client messages
// ---------------------------------------------------------------------------

#[test]
fn bus_clients_can_message_each_other() {
    // Regression for the bus-clone snapshot bug: mailboxes registered after a
    // thread cloned the bus were invisible to that clone, so a client-to-
    // client send could vanish. The chain below only completes when client 1
    // can reach client 2's mailbox:
    //   server Finish -> client 1 relays Custom(8) to client 2
    //   client 2 finishes only once it has BOTH its own Finish and the relay
    //   (either may arrive first) -> reports to server
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::Arc;
    let mut runner = course(2, 29);
    runner.server.state.cfg.verify = VerifyMode::Skip;
    let mut clients: Vec<_> = runner.clients.into_values().collect();
    for client in clients.iter_mut() {
        match client.state.id {
            1 => client.registry_mut().register(
                Event::Message(MessageKind::Finish),
                "relay_then_finish",
                vec![
                    Event::Message(MessageKind::Custom(8)),
                    Event::Message(MessageKind::MetricsReport),
                ],
                Box::new(|state, msg, ctx| {
                    ctx.send(Message::new(
                        state.id,
                        2,
                        MessageKind::Custom(8),
                        msg.round,
                        Payload::Empty,
                    ));
                    let metrics = state.trainer.evaluate_test();
                    ctx.send(Message::new(
                        state.id,
                        SERVER_ID,
                        MessageKind::MetricsReport,
                        msg.round,
                        Payload::Report { metrics },
                    ));
                    state.done = true;
                }),
            ),
            2 => {
                let seen = Arc::new(AtomicU8::new(0));
                let finish_when_both =
                    move |state: &mut fedscope::core::ClientState,
                          msg: &Message,
                          ctx: &mut fedscope::core::Ctx| {
                        if seen.fetch_add(1, Ordering::SeqCst) + 1 < 2 {
                            return;
                        }
                        let metrics = state.trainer.evaluate_test();
                        ctx.send(Message::new(
                            state.id,
                            SERVER_ID,
                            MessageKind::MetricsReport,
                            msg.round,
                            Payload::Report { metrics },
                        ));
                        state.done = true;
                    };
                client.registry_mut().register(
                    Event::Message(MessageKind::Finish),
                    "await_relay",
                    vec![Event::Message(MessageKind::MetricsReport)],
                    Box::new(finish_when_both.clone()),
                );
                client.registry_mut().register(
                    Event::Message(MessageKind::Custom(8)),
                    "finish_on_relay",
                    vec![Event::Message(MessageKind::MetricsReport)],
                    Box::new(finish_when_both),
                );
            }
            other => panic!("unexpected client id {other}"),
        }
    }
    let server = run_distributed_with(runner.server, clients, BUDGET, BusRunOptions::default())
        .expect("relayed finish must complete");
    assert_eq!(server.state.round, 3);
    assert!(
        server.state.client_reports.contains_key(&2),
        "client 2 reports only after the client-to-client relay arrives"
    );
    assert!(server.state.dropouts.is_empty());
}
