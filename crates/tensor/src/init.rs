//! Weight initializers.
//!
//! All initializers take an explicit RNG so FL courses are reproducible: the
//! server seeds one `StdRng` per course and every participant derives from it.

use crate::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Kaiming/He-normal initialization for ReLU networks: `N(0, sqrt(2/fan_in))`.
pub fn kaiming_normal(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    let dist = Normal::new(0.0, std).expect("valid std");
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| dist.sample(rng) as f32).collect();
    Tensor::from_vec(shape.to_vec(), data)
}

/// Xavier/Glorot-uniform initialization: `U(-a, a)`, `a = sqrt(6/(fan_in+fan_out))`.
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    let dist = Uniform::new_inclusive(-a, a);
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| dist.sample(rng) as f32).collect();
    Tensor::from_vec(shape.to_vec(), data)
}

/// Standard-normal tensor scaled by `std`.
pub fn normal(shape: &[usize], std: f64, rng: &mut impl Rng) -> Tensor {
    let dist = Normal::new(0.0, std).expect("valid std");
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| dist.sample(rng) as f32).collect();
    Tensor::from_vec(shape.to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = kaiming_normal(&[1000], 50, &mut rng);
        let std = (t.data().iter().map(|v| v * v).sum::<f32>() / 1000.0).sqrt();
        let expect = (2.0f32 / 50.0).sqrt();
        assert!((std - expect).abs() < 0.05, "std {std} vs {expect}");
    }

    #[test]
    fn xavier_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = (6.0f32 / 20.0).sqrt();
        let t = xavier_uniform(&[500], 10, 10, &mut rng);
        assert!(t.data().iter().all(|v| v.abs() <= a + 1e-6));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        assert_eq!(normal(&[16], 1.0, &mut r1), normal(&[16], 1.0, &mut r2));
    }
}
