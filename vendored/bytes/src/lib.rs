//! Minimal in-repo stand-in for the `bytes` crate.
//!
//! Implements the [`Buf`]/[`BufMut`] little-endian accessors and the
//! [`Bytes`]/[`BytesMut`] buffer types used by the wire codec. `Bytes` is a
//! plain owned `Vec<u8>` (no refcounted slicing — the workspace never splits
//! buffers).

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.to_vec() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read access to a byte cursor; `get_*` calls advance it.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads `N` bytes into an array, advancing.
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }

    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8 {
        u8::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(258);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(-1.5);
        buf.put_f64_le(123.456);
        buf.put_slice(b"abc");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 258);
        assert_eq!(cur.get_u32_le(), 70_000);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        assert_eq!(cur.get_f32_le(), -1.5);
        assert_eq!(cur.get_f64_le(), 123.456);
        assert_eq!(cur, b"abc");
    }

    #[test]
    fn advance_and_remaining_track_cursor() {
        let data = [1u8, 2, 3, 4, 5];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.remaining(), 5);
        cur.advance(2);
        assert_eq!(cur.remaining(), 3);
        assert_eq!(cur.chunk(), &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
