//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! Keeps the property-test surface the workspace uses — the [`proptest!`]
//! macro, `prop_assert*`/`prop_assume!`, range and regex-string strategies,
//! `any::<T>()`, and `prop::collection::{vec, btree_map}` — backed by the
//! vendored `rand`. Cases are generated from a fixed seed (deterministic runs,
//! no failure-case shrinking); set `PROPTEST_CASES` to change the case count.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy yielding one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_num_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_strategy_num_range!(
        u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64
    );

    macro_rules! impl_strategy_int_range_from {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_strategy_int_range_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Regex-string strategies: `"[a-z]{1,8}(\\.[a-z]{1,8})?"` generates
    /// matching strings. Supported subset: literals, `\x` escapes, `[...]`
    /// classes with ranges, groups, and the `?`, `*`, `+`, `{n}`, `{m,n}`
    /// quantifiers.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            let node = super::regex::parse(self);
            let mut out = String::new();
            node.generate(rng, &mut out);
            out
        }
    }

    impl Strategy for String {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            self.as_str().sample(rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_strategy_tuple!(A: 0, B: 1);
    impl_strategy_tuple!(A: 0, B: 1, C: 2);
    impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
}

mod regex {
    //! Tiny generator-oriented regex subset for string strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    pub(crate) enum Node {
        Seq(Vec<Node>),
        Lit(char),
        /// Inclusive character ranges, e.g. `[a-z0-9_]`.
        Class(Vec<(char, char)>),
        Repeat {
            inner: Box<Node>,
            min: u32,
            max: u32,
        },
    }

    impl Node {
        pub(crate) fn generate(&self, rng: &mut StdRng, out: &mut String) {
            match self {
                Node::Seq(items) => items.iter().for_each(|n| n.generate(rng, out)),
                Node::Lit(c) => out.push(*c),
                Node::Class(ranges) => {
                    let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                    let mut pick = rng.gen_range(0..total);
                    for (lo, hi) in ranges {
                        let span = *hi as u32 - *lo as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(*lo as u32 + pick).expect("class range"));
                            return;
                        }
                        pick -= span;
                    }
                }
                Node::Repeat { inner, min, max } => {
                    let n = rng.gen_range(*min..=*max);
                    for _ in 0..n {
                        inner.generate(rng, out);
                    }
                }
            }
        }
    }

    pub(crate) fn parse(pattern: &str) -> Node {
        let chars: Vec<char> = pattern.chars().collect();
        let (node, used) = parse_seq(&chars, 0);
        assert_eq!(used, chars.len(), "unsupported regex pattern: {pattern}");
        node
    }

    /// Parses until end of input or an unmatched `)`.
    fn parse_seq(chars: &[char], mut pos: usize) -> (Node, usize) {
        let mut items = Vec::new();
        while pos < chars.len() && chars[pos] != ')' {
            let (atom, next) = parse_atom(chars, pos);
            let (atom, next) = parse_quantifier(chars, next, atom);
            items.push(atom);
            pos = next;
        }
        (Node::Seq(items), pos)
    }

    fn parse_atom(chars: &[char], pos: usize) -> (Node, usize) {
        match chars[pos] {
            '\\' => (Node::Lit(chars[pos + 1]), pos + 2),
            '[' => parse_class(chars, pos + 1),
            '(' => {
                let (inner, end) = parse_seq(chars, pos + 1);
                assert_eq!(chars.get(end), Some(&')'), "unclosed group in regex");
                (inner, end + 1)
            }
            '.' => (Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9')]), pos + 1),
            c => (Node::Lit(c), pos + 1),
        }
    }

    fn parse_class(chars: &[char], mut pos: usize) -> (Node, usize) {
        let mut ranges = Vec::new();
        while chars[pos] != ']' {
            let lo = if chars[pos] == '\\' {
                pos += 1;
                chars[pos]
            } else {
                chars[pos]
            };
            pos += 1;
            if chars[pos] == '-' && chars[pos + 1] != ']' {
                ranges.push((lo, chars[pos + 1]));
                pos += 2;
            } else {
                ranges.push((lo, lo));
            }
        }
        (Node::Class(ranges), pos + 1)
    }

    fn parse_quantifier(chars: &[char], pos: usize, atom: Node) -> (Node, usize) {
        match chars.get(pos) {
            Some('?') => {
                (Node::Repeat { inner: Box::new(atom), min: 0, max: 1 }, pos + 1)
            }
            Some('*') => {
                (Node::Repeat { inner: Box::new(atom), min: 0, max: 8 }, pos + 1)
            }
            Some('+') => {
                (Node::Repeat { inner: Box::new(atom), min: 1, max: 8 }, pos + 1)
            }
            Some('{') => {
                let close = chars[pos..].iter().position(|&c| c == '}').expect("unclosed {") + pos;
                let body: String = chars[pos + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse().expect("regex {m,n}"),
                        n.parse().expect("regex {m,n}"),
                    ),
                    None => {
                        let n: u32 = body.parse().expect("regex {n}");
                        (n, n)
                    }
                };
                (Node::Repeat { inner: Box::new(atom), min, max }, close + 1)
            }
            _ => (atom, pos),
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, StandardSample};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_standard!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool
    );

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // finite full-range floats (NaN/inf excluded, as tests expect
            // comparable values)
            let x: f32 = StandardSample::from_rng(rng);
            (x - 0.5) * 2.0 * f32::MAX.sqrt()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let x: f64 = StandardSample::from_rng(rng);
            (x - 0.5) * 2.0 * f64::MAX.sqrt()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// A size bound for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// exclusive
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { min: r.start, max: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.min..self.max)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`; duplicate keys are retried, so maps may
    /// come up slightly short when the key domain is nearly exhausted.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.sample(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0;
            while map.len() < target && attempts < target * 10 + 16 {
                attempts += 1;
                map.insert(self.key.sample(rng), self.value.sample(rng));
            }
            map
        }
    }
}

pub mod test_runner {
    //! The case loop behind [`proptest!`](crate::proptest).

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Number of accepted cases each property must pass.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    }

    /// Deterministic per-test RNG: fixed global seed mixed with the test name.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }

    /// Runs one property until [`case_count`] cases pass.
    ///
    /// # Panics
    /// Panics on the first failing case, or when rejection (via
    /// `prop_assume!`) starves the run.
    pub fn run(test_name: &str, mut one_case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>) {
        let cases = case_count();
        let mut rng = rng_for(test_name);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < cases {
            match one_case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < cases.saturating_mul(100).max(1000),
                        "{test_name}: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: property failed after {accepted} passing cases: {msg}");
                }
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that samples the strategies and runs the body until
/// the configured number of cases pass.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Rejects (does not count) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = rng_for("regex_strategy_matches_shape");
        let strat = "[a-z]{1,8}(\\.[a-z]{1,8})?";
        for _ in 0..200 {
            let s = Strategy::sample(&strat, &mut rng);
            let parts: Vec<&str> = s.split('.').collect();
            assert!(parts.len() <= 2, "{s}");
            for p in &parts {
                assert!((1..=8).contains(&p.len()), "{s}");
                assert!(p.chars().all(|c| c.is_ascii_lowercase()), "{s}");
            }
        }
    }

    #[test]
    fn collection_strategies_respect_sizes() {
        let mut rng = rng_for("collection_strategies_respect_sizes");
        let v = prop::collection::vec(0u8..10, 3..7);
        let m = prop::collection::btree_map("[a-c]", any::<u8>(), 0..4);
        for _ in 0..100 {
            let xs = Strategy::sample(&v, &mut rng);
            assert!((3..7).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 10));
            let map = Strategy::sample(&m, &mut rng);
            assert!(map.len() < 4);
        }
    }

    proptest! {
        #[test]
        fn macro_assertions_work(x in 0u32..100, y in 0u32..100) {
            prop_assume!(x != 99);
            prop_assert!(x < 100, "x was {}", x);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
