//! FedEx — federated hyperparameter tuning inside the FL course (§4.3).
//!
//! Traditional HPO treats a whole FL course as the black box; FedEx instead
//! explores *client-wise* configurations concurrently in a single round:
//! every sampled client draws a candidate configuration from a shared policy,
//! re-specifies its local optimizer (Figure 8), trains, and reports how much
//! its validation loss improved; the policy is updated by exponentiated
//! gradient. Wrapping FedEx with RS or SHA (the FedHPO-B protocol) lets the
//! wrapper handle server-side hyperparameters while FedEx fine-tunes
//! client-side ones.

use fs_core::config::FlConfig;
use fs_core::course::TrainerFactory;
use fs_core::trainer::{share_all, LocalTrainer, LocalUpdate, TrainConfig, Trainer};
use fs_tensor::model::Metrics;
use fs_tensor::optim::SgdConfig;
use fs_tensor::ParamMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// The exponentiated-gradient policy over candidate configurations.
#[derive(Clone, Debug)]
pub struct FedExPolicy {
    arms: Vec<SgdConfig>,
    logits: Vec<f64>,
    /// Exponentiated-gradient step size.
    pub eta: f64,
}

impl FedExPolicy {
    /// Creates a uniform policy over `arms`.
    pub fn new(arms: Vec<SgdConfig>, eta: f64) -> Self {
        assert!(!arms.is_empty(), "need at least one arm");
        let n = arms.len();
        Self {
            arms,
            logits: vec![0.0; n],
            eta,
        }
    }

    /// Standard arm grid around a base configuration: learning-rate
    /// multipliers {0.5, 0.7, 1, 1.4, 2} (a half-decade each way — wide
    /// enough to adapt, mild enough not to destabilize averaging).
    pub fn lr_grid(base: SgdConfig, eta: f64) -> Self {
        let arms = [0.5f32, 0.707, 1.0, 1.414, 2.0]
            .iter()
            .map(|&m| SgdConfig {
                lr: base.lr * m,
                ..base
            })
            .collect();
        Self::new(arms, eta)
    }

    /// Current sampling probabilities (softmax of the logits).
    pub fn probabilities(&self) -> Vec<f64> {
        let max = self
            .logits
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = self.logits.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Samples an arm index and its configuration.
    pub fn sample(&self, rng: &mut impl Rng) -> (usize, SgdConfig) {
        let p = self.probabilities();
        let mut u: f64 = rng.gen();
        for (i, &pi) in p.iter().enumerate() {
            if u < pi {
                return (i, self.arms[i]);
            }
            u -= pi;
        }
        (self.arms.len() - 1, self.arms[self.arms.len() - 1])
    }

    /// Exponentiated-gradient update: `advantage` is the client's validation
    /// improvement (positive = the arm helped).
    pub fn update(&mut self, arm: usize, advantage: f64) {
        let p = self.probabilities();
        // importance-weighted gradient on the played arm
        self.logits[arm] += self.eta * advantage / p[arm].max(1e-6);
        // keep logits bounded for numerical sanity
        let max = self
            .logits
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        for l in &mut self.logits {
            *l -= max;
        }
    }

    /// The most probable arm's configuration.
    pub fn best_arm(&self) -> SgdConfig {
        let p = self.probabilities();
        let mut best = 0;
        for i in 1..p.len() {
            if p[i] > p[best] {
                best = i;
            }
        }
        self.arms[best]
    }
}

/// A trainer wrapper that re-specifies its configuration from the shared
/// policy every round and feeds back the observed advantage.
pub struct FedExTrainer {
    inner: LocalTrainer,
    policy: Arc<Mutex<FedExPolicy>>,
    rng: StdRng,
}

impl FedExTrainer {
    /// Wraps a trainer with a shared policy.
    pub fn new(inner: LocalTrainer, policy: Arc<Mutex<FedExPolicy>>, seed: u64) -> Self {
        Self {
            inner,
            policy,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Trainer for FedExTrainer {
    fn incorporate(&mut self, global: &ParamMap) {
        self.inner.incorporate(global);
    }

    fn local_train(&mut self, global: &ParamMap, round: u64) -> LocalUpdate {
        let (arm, cfg) = {
            let policy = self.policy.lock().expect("policy lock");
            policy.sample(&mut self.rng)
        };
        self.inner.set_sgd_config(cfg);
        self.inner.incorporate(global);
        let before = self.inner.evaluate_val();
        let update = self.inner.local_train(global, round);
        let after = self.inner.evaluate_val();
        if before.n > 0 {
            let advantage = (before.loss - after.loss) as f64;
            self.policy
                .lock()
                .expect("policy lock")
                .update(arm, advantage);
        }
        update
    }

    fn evaluate_val(&mut self) -> Metrics {
        self.inner.evaluate_val()
    }

    fn evaluate_test(&mut self) -> Metrics {
        self.inner.evaluate_test()
    }

    fn num_train_samples(&self) -> usize {
        self.inner.num_train_samples()
    }

    fn set_sgd_config(&mut self, cfg: SgdConfig) {
        self.inner.set_sgd_config(cfg);
    }
}

/// Builds FedEx-wrapped trainer factories for [`crate::objective::FlObjective`].
///
/// One shared policy is created per trial (lazily, from the trial's course
/// configuration), so a wrapper like RS or SHA restarts exploration for each
/// configuration it proposes.
#[derive(Clone)]
pub struct FedExHook {
    /// Exponentiated-gradient step size.
    pub eta: f64,
    /// Observable handle to the most recent trial's policy.
    pub last_policy: Arc<Mutex<Option<Arc<Mutex<FedExPolicy>>>>>,
}

impl FedExHook {
    /// Creates a hook.
    pub fn new(eta: f64) -> Self {
        Self {
            eta,
            last_policy: Arc::new(Mutex::new(None)),
        }
    }

    /// Builds the per-trial trainer factory.
    pub fn make_trainer_factory(&self) -> TrainerFactory {
        let eta = self.eta;
        let slot: Arc<Mutex<Option<Arc<Mutex<FedExPolicy>>>>> = Arc::new(Mutex::new(None));
        *self.last_policy.lock().expect("hook lock") = None;
        let observer = self.last_policy.clone();
        Box::new(move |i, model, split, cfg: &FlConfig| {
            let policy = {
                let mut slot = slot.lock().expect("slot lock");
                slot.get_or_insert_with(|| {
                    let p = Arc::new(Mutex::new(FedExPolicy::lr_grid(cfg.sgd, eta)));
                    // fsa::allow(FSA040, distinct mutexes (slot vs observer) always taken in this order; no reverse path exists)
                    *observer.lock().expect("hook lock") = Some(p.clone());
                    p
                })
                .clone()
            };
            let inner = LocalTrainer::new(
                model,
                split,
                TrainConfig {
                    local_steps: cfg.local_steps,
                    batch_size: cfg.batch_size,
                    sgd: cfg.sgd,
                },
                share_all(),
                cfg.seed ^ (i as u64 + 1),
            );
            Box::new(FedExTrainer::new(
                inner,
                policy,
                cfg.seed ^ (0xfede ^ i as u64),
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_probabilities_normalized() {
        let p = FedExPolicy::lr_grid(SgdConfig::with_lr(0.1), 0.5);
        let probs = p.probabilities();
        assert_eq!(probs.len(), 5);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&v| (v - 0.2).abs() < 1e-9));
    }

    #[test]
    fn positive_advantage_raises_arm_probability() {
        let mut p = FedExPolicy::lr_grid(SgdConfig::with_lr(0.1), 0.5);
        for _ in 0..10 {
            p.update(2, 1.0);
        }
        let probs = p.probabilities();
        assert!(probs[2] > 0.5, "reinforced arm at {probs:?}");
        assert!((p.best_arm().lr - 0.1).abs() < 1e-6);
    }

    #[test]
    fn negative_advantage_suppresses_arm() {
        let mut p = FedExPolicy::lr_grid(SgdConfig::with_lr(0.1), 0.5);
        for _ in 0..10 {
            p.update(4, -1.0);
        }
        let probs = p.probabilities();
        assert!(probs[4] < 0.1, "suppressed arm at {probs:?}");
    }

    #[test]
    fn sampling_follows_distribution() {
        let mut p = FedExPolicy::new(vec![SgdConfig::with_lr(0.1), SgdConfig::with_lr(1.0)], 0.5);
        p.logits = vec![5.0, 0.0];
        let mut rng = StdRng::seed_from_u64(0);
        let mut first = 0;
        for _ in 0..100 {
            if p.sample(&mut rng).0 == 0 {
                first += 1;
            }
        }
        assert!(first > 90, "arm 0 sampled only {first}/100");
    }

    #[test]
    fn fedex_course_adapts_client_configs() {
        use crate::objective::{FlObjective, Objective};
        use fs_data::synth::{twitter_like, TwitterConfig};
        use fs_tensor::model::{logistic_regression, Model};

        let data = twitter_like(&TwitterConfig {
            num_clients: 10,
            per_client: 20,
            ..Default::default()
        });
        let dim = data.input_dim();
        let base = FlConfig {
            concurrency: 6,
            sgd: SgdConfig::with_lr(0.05),
            ..Default::default()
        };
        let hook = FedExHook::new(0.2);
        let mut obj = FlObjective::new(
            data,
            Arc::new(move |rng: &mut StdRng| {
                Box::new(logistic_regression(dim, 2, rng)) as Box<dyn Model>
            }),
            base,
        );
        obj.trainer_hook = Some(hook.clone());
        let cfg = crate::space::Config::new();
        let (result, _) = obj.run(&cfg, 8, None);
        assert!(result.val_loss.is_finite());
        // the policy was created and updated during the course
        let policy = hook
            .last_policy
            .lock()
            .unwrap()
            .clone()
            .expect("policy created");
        let probs = policy.lock().unwrap().probabilities();
        let uniform = probs.iter().all(|&v| (v - 0.2).abs() < 1e-9);
        assert!(!uniform, "policy never updated: {probs:?}");
    }
}
