//! Minimal in-repo stand-in for the `serde_derive` crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for structs
//! with named fields — the only shape the workspace derives — by walking the
//! raw `TokenStream` (no syn/quote in the offline registry). `Serialize`
//! builds a `serde::Value::Object` in field declaration order; `Deserialize`
//! reads the same object back field by field, wrapping any inner error with
//! the `Type.field` path.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let name = struct_name(&tokens, "Serialize");
    let fields = named_fields(&tokens, "Serialize");

    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "(String::from(\"{field}\"), serde::Serialize::to_value(&self.{field})),"
        ));
    }
    let output = format!(
        "impl serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> serde::Value {{\n\
         \t\tserde::Value::Object(vec![{entries}])\n\
         \t}}\n\
         }}"
    );
    output.parse().expect("derive(Serialize): generated impl must parse")
}

/// Derives `serde::Deserialize` for a struct with named fields.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let name = struct_name(&tokens, "Deserialize");
    let fields = named_fields(&tokens, "Deserialize");

    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "{field}: serde::Deserialize::from_value(\
                 v.get(\"{field}\").unwrap_or(&serde::Value::Null)\
             ).map_err(|e| e.in_field(\"{name}\", \"{field}\"))?,"
        ));
    }
    let output = format!(
        "impl serde::Deserialize for {name} {{\n\
         \tfn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
         \t\tOk(Self {{ {entries} }})\n\
         \t}}\n\
         }}"
    );
    output.parse().expect("derive(Deserialize): generated impl must parse")
}

/// Returns the identifier following the `struct` keyword.
fn struct_name(tokens: &[TokenTree], derive: &str) -> String {
    let mut iter = tokens.iter();
    while let Some(tree) = iter.next() {
        if matches!(tree, TokenTree::Ident(i) if i.to_string() == "struct") {
            if let Some(TokenTree::Ident(name)) = iter.next() {
                return name.to_string();
            }
            panic!("derive({derive}): expected an identifier after `struct`");
        }
    }
    panic!("derive({derive}): only structs are supported");
}

/// Returns the field names from the struct's brace-delimited body.
fn named_fields(tokens: &[TokenTree], derive: &str) -> Vec<String> {
    let body = tokens
        .iter()
        .rev()
        .find_map(|tree| match tree {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("derive({derive}): only structs with named fields are supported")
        });

    let mut fields = Vec::new();
    let mut trees = body.into_iter().peekable();
    loop {
        // skip attributes (e.g. doc comments) and visibility before the name
        match trees.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                trees.next();
                trees.next(); // the bracketed attribute body
                continue;
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                trees.next();
                if matches!(trees.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    trees.next(); // pub(crate) and friends
                }
                continue;
            }
            _ => {}
        }
        match trees.next() {
            Some(TokenTree::Ident(name)) => fields.push(name.to_string()),
            Some(other) => {
                panic!("derive({derive}): unexpected token `{other}` in struct body")
            }
            None => break,
        }
        // consume `: Type` up to the next top-level comma; groups nest angle
        // brackets safely, but bare `<`/`>` need explicit depth tracking
        let mut angle_depth = 0i32;
        for tree in trees.by_ref() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}
