//! **Figure 11** — staleness distributions of aggregated updates under
//! different asynchronous strategies.
//!
//! Paper's shape: the *after-aggregating* broadcast manner produces lower
//! staleness than *after-receiving* (comparing `Goal-Aggr-Unif` with
//! `Goal-Rece-Unif`), because after-receiving keeps slow clients training on
//! models that age while they work.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_fig11
//! ```

use fs_bench::output::{ascii_histogram, write_json};
use fs_bench::strategies::Strategy;
use fs_bench::workloads::femnist;
use serde::Serialize;

#[derive(Serialize)]
struct StalenessDist {
    strategy: String,
    histogram: Vec<usize>,
    mean: f64,
    p95: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn main() {
    let wl = femnist(7);
    let strategies = [
        Strategy::GoalAggrUnif,
        Strategy::GoalReceUnif,
        Strategy::TimeAggrUnif,
        Strategy::GoalAggrGroup,
    ];
    let mut dists = Vec::new();
    for strat in strategies {
        let mut cfg = strat.configure(&wl);
        cfg.target_accuracy = None;
        cfg.total_rounds = 120;
        let mut runner = wl.build(cfg);
        runner.run();
        let mut log = runner.server.state.staleness_log.clone();
        log.sort_unstable();
        let max = *log.last().unwrap_or(&0) as usize;
        let mut hist = vec![0usize; max + 1];
        for &s in &log {
            hist[s as usize] += 1;
        }
        let mean = log.iter().sum::<u64>() as f64 / log.len().max(1) as f64;
        let p95 = percentile(&log, 0.95);
        println!("\n{} — staleness of aggregated updates", strat.label());
        let buckets: Vec<(String, usize)> = hist
            .iter()
            .enumerate()
            .map(|(i, &c)| (i.to_string(), c))
            .collect();
        println!("{}", ascii_histogram(&buckets, 40));
        println!("mean = {mean:.2}, p95 = {p95}");
        dists.push(StalenessDist {
            strategy: strat.label().to_string(),
            histogram: hist,
            mean,
            p95,
        });
    }
    let mean_of = |label: &str| {
        dists
            .iter()
            .find(|d| d.strategy == label)
            .map(|d| d.mean)
            .unwrap_or(0.0)
    };
    println!(
        "\nafter-aggregating mean staleness {:.2} vs after-receiving {:.2} (paper: Aggr < Rece)",
        mean_of("Goal-Aggr-Unif"),
        mean_of("Goal-Rece-Unif"),
    );
    let path = write_json("fig11", &dists).expect("write results");
    println!("wrote {path}");
}
