// FSA023 fixture: direct indexing can panic out-of-range.
pub fn pick(xs: &[u32], i: usize) -> u32 {
    xs[i]
}
