//! **fs-monitor harness** — runs the strategy × workload grid with a
//! recording monitor attached and emits every observability artifact:
//!
//! * `results/monitor_rounds.jsonl` — one JSON object per evaluated round,
//!   tagged with its grid cell;
//! * `results/monitor_summary.csv` — every counter of every cell
//!   (`workload,strategy,counter,value`);
//! * `results/trace_monitor.json` — Chrome trace-event JSON of the first
//!   cell, loadable in `chrome://tracing` / Perfetto;
//! * `BENCH_monitor.json` (repo root) — the bench snapshot: rounds/sec
//!   wall-clock, virtual time to target accuracy, bytes on wire.
//!
//! Every cell also cross-checks the monitor's byte counters against the
//! runner's sim-charged totals — they must match exactly.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_monitor                # full grid
//! cargo run -p fs-bench --release --bin exp_monitor -- --quick    # CI grid
//! cargo run -p fs-bench --release --bin exp_monitor -- --validate # gate only
//! ```

use fs_bench::args::ExpArgs;
use fs_bench::output::render_table;
use fs_bench::strategies::Strategy;
use fs_bench::workloads::{cifar, femnist, twitter, Workload};
use fs_monitor::export::{validate_bench_snapshot, BenchRow, BenchSnapshot};
use fs_monitor::trace::{chrome_trace_json, validate_chrome_trace};
use fs_monitor::{counters, MonitorHandle, RecordingMonitor};
use serde::Serialize;
use std::fs;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

const BENCH_PATH: &str = "BENCH_monitor.json";

fn workload_by_name(name: &str, seed: u64) -> Workload {
    match name {
        "femnist" => femnist(seed),
        "cifar" => cifar(seed),
        "twitter" => twitter(seed),
        other => unreachable!("args module vets workload names, got {other}"),
    }
}

fn main() {
    let args = ExpArgs::parse();

    // --validate: CI gate mode — parse the existing snapshot and exit
    if args.has_flag("validate") {
        let text = fs::read_to_string(BENCH_PATH)
            .unwrap_or_else(|e| panic!("cannot read {BENCH_PATH}: {e}"));
        let snap = validate_bench_snapshot(&text)
            .unwrap_or_else(|e| panic!("{BENCH_PATH} failed validation: {e}"));
        println!("{BENCH_PATH} valid: {} rows", snap.rows.len());
        return;
    }

    let seed = args.seed_or(7);
    let quick = args.quick;
    let workload_names = if quick {
        args.workloads_or(&["femnist"])
    } else {
        args.workloads_or(&["femnist", "cifar", "twitter"])
    };
    let strategies = if quick {
        args.strategies_or(vec![Strategy::SyncVanilla, Strategy::GoalAggrUnif])
    } else {
        args.strategies_or(Strategy::table1())
    };
    let rounds = args.rounds_or(if quick { 8 } else { 40 });

    fs::create_dir_all("results").expect("create results/");
    let mut jsonl = fs::File::create("results/monitor_rounds.jsonl").expect("create jsonl");
    let mut csv = fs::File::create("results/monitor_summary.csv").expect("create csv");
    writeln!(csv, "workload,strategy,counter,value").expect("write csv header");

    let mut snapshot = BenchSnapshot::new("exp_monitor");
    let mut table: Vec<Vec<String>> = Vec::new();
    let mut first_trace: Option<String> = None;

    for wl_name in &workload_names {
        let wl = workload_by_name(wl_name, seed);
        for &strat in &strategies {
            let mut cfg = strat.configure(&wl);
            cfg.target_accuracy = None;
            cfg.parallelism = args.threads_or(1);
            cfg.total_rounds = if strat.is_async() {
                rounds * (cfg.concurrency as u64) / (wl.aggregation_goal as u64).max(1)
            } else {
                rounds
            };
            let monitor = Arc::new(Mutex::new(RecordingMonitor::new()));
            let mut runner = wl
                .build(cfg)
                .with_monitor(MonitorHandle::from_shared(monitor.clone()));
            let report = runner.run();
            let mon = monitor.lock().unwrap_or_else(PoisonError::into_inner);

            // reconciliation: monitor byte counters must equal the
            // sim-charged totals, by construction
            assert_eq!(
                mon.counter(counters::UPLOADED_BYTES),
                report.uploaded_bytes,
                "{wl_name}/{}: uploaded bytes disagree",
                strat.label()
            );
            assert_eq!(
                mon.counter(counters::DOWNLOADED_BYTES),
                report.downloaded_bytes,
                "{wl_name}/{}: downloaded bytes disagree",
                strat.label()
            );
            mon.validate_nesting().unwrap_or_else(|e| {
                panic!("{wl_name}/{}: spans not well-nested: {e}", strat.label())
            });

            for r in mon.rounds() {
                let mut v = Serialize::to_value(r);
                if let serde::Value::Object(entries) = &mut v {
                    entries.insert(
                        0,
                        ("workload".into(), serde::Value::String(wl_name.clone())),
                    );
                    entries.insert(
                        1,
                        (
                            "strategy".into(),
                            serde::Value::String(strat.label().into()),
                        ),
                    );
                }
                let line = serde_json::to_string(&v).expect("serialize round line");
                writeln!(jsonl, "{line}").expect("write jsonl");
            }
            for (name, value) in mon.counters() {
                writeln!(csv, "{wl_name},{},{name},{value}", strat.label()).expect("write csv");
            }
            if first_trace.is_none() {
                first_trace = Some(chrome_trace_json(&mon));
            }

            let wall = mon.wall_secs().max(1e-9);
            let row = BenchRow {
                workload: wl_name.clone(),
                strategy: strat.label().to_string(),
                compressor: "none".to_string(),
                rounds: report.rounds,
                rounds_per_sec: report.rounds as f64 / wall,
                virtual_secs_to_target: report.time_to_accuracy(wl.target_accuracy).unwrap_or(-1.0),
                target_accuracy: f64::from(wl.target_accuracy),
                best_accuracy: f64::from(report.best_accuracy()),
                uploaded_bytes: report.uploaded_bytes,
                downloaded_bytes: report.downloaded_bytes,
                final_virtual_secs: report.final_time_secs,
            };
            table.push(vec![
                row.workload.clone(),
                row.strategy.clone(),
                row.rounds.to_string(),
                format!("{:.1}", row.rounds_per_sec),
                format!("{:.3}", row.best_accuracy),
                if row.virtual_secs_to_target >= 0.0 {
                    format!("{:.0}s", row.virtual_secs_to_target)
                } else {
                    "—".to_string()
                },
                row.uploaded_bytes.to_string(),
                row.downloaded_bytes.to_string(),
            ]);
            eprintln!(
                "  {wl_name:<8} {:<16} {} rounds, {:.1} rounds/s wall, best acc {:.3}",
                strat.label(),
                row.rounds,
                row.rounds_per_sec,
                row.best_accuracy
            );
            snapshot.rows.push(row);
        }
    }

    let trace = first_trace.expect("at least one grid cell ran");
    let n_events = validate_chrome_trace(&trace).expect("trace must validate");
    fs::write("results/trace_monitor.json", &trace).expect("write trace");

    let json = snapshot.to_json();
    validate_bench_snapshot(&json).expect("snapshot must validate before writing");
    fs::write(BENCH_PATH, &json).expect("write bench snapshot");

    println!("\nexp_monitor grid (seed {seed}, {rounds} sync-equivalent rounds)\n");
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "strategy",
                "rounds",
                "rounds/s",
                "best acc",
                "t(target)",
                "up bytes",
                "down bytes"
            ],
            &table
        )
    );
    println!("wrote results/monitor_rounds.jsonl");
    println!("wrote results/monitor_summary.csv");
    println!("wrote results/trace_monitor.json ({n_events} events)");
    println!("wrote {BENCH_PATH} ({} rows)", snapshot.rows.len());
}
