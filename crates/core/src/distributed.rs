//! The distributed runner: the same workers on real threads.
//!
//! Each participant runs on its own thread with a mailbox on the
//! [`fs_net::bus::Bus`]; every message crosses the bus as wire bytes, so the
//! whole message-translation path (§3.5) is exercised. Virtual time does not
//! apply here — `time_up` courses must use the standalone runner — but the
//! `all_received` and `goal_achieved` strategies run unchanged, demonstrating
//! that worker behaviour is transport-independent.

use crate::client::Client;
use crate::config::AggregationRule;
use crate::ctx::Ctx;
use crate::server::Server;
use fs_net::bus::{Bus, BusError};
use fs_net::SERVER_ID;
use fs_sim::VirtualTime;
use fs_verify::{VerifyMode, VerifyReport};
use std::fmt;
use std::time::Duration;

/// Errors from a distributed run.
#[derive(Debug)]
pub enum DistributedError {
    /// The configured rule needs virtual time (e.g. `time_up`).
    UnsupportedRule(&'static str),
    /// The course failed static verification under [`VerifyMode::Enforce`].
    Verification(Box<VerifyReport>),
    /// A bus operation failed.
    Bus(BusError),
    /// The course did not finish within the wall-clock budget.
    Timeout,
}

impl fmt::Display for DistributedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributedError::UnsupportedRule(r) => {
                write!(f, "rule {r} requires the standalone (virtual-time) runner")
            }
            DistributedError::Verification(report) => {
                write!(f, "course rejected by static verification:\n{report}")
            }
            DistributedError::Bus(e) => write!(f, "bus error: {e}"),
            DistributedError::Timeout => write!(f, "distributed course timed out"),
        }
    }
}

/// Runs static verification per the server's configured [`VerifyMode`]
/// before any thread is spawned.
fn preflight(server: &Server, clients: &[Client]) -> Result<(), DistributedError> {
    let mode = server.state.cfg.verify;
    if mode == VerifyMode::Skip {
        return Ok(());
    }
    let refs: Vec<&Client> = clients.iter().collect();
    let report = crate::verify::verify_assembled(server, &refs, Some(&server.state.cfg));
    let verbose = std::env::var_os("FS_VERIFY_LOG").is_some();
    if verbose {
        for line in crate::verify::effective_handler_log(server, &refs) {
            eprintln!("fs-verify: {line}");
        }
    }
    if verbose || !report.is_clean() {
        eprint!("{}", report.render_table());
    }
    if mode == VerifyMode::Enforce && report.has_errors() {
        return Err(DistributedError::Verification(Box::new(report)));
    }
    Ok(())
}

impl std::error::Error for DistributedError {}

impl From<BusError> for DistributedError {
    fn from(e: BusError) -> Self {
        DistributedError::Bus(e)
    }
}

fn drain_ctx(bus: &Bus, ctx: Ctx) -> Result<bool, BusError> {
    for out in ctx.outbox {
        bus.send(&out.msg)?;
    }
    // timers are unsupported here; the config check rejects time_up courses
    debug_assert!(
        ctx.timers.is_empty(),
        "timers require the standalone runner"
    );
    Ok(ctx.finished)
}

/// Runs a course over threads and the in-process bus, returning the server
/// (with its histories and client reports) once the course finishes.
pub fn run_distributed(
    mut server: Server,
    clients: Vec<Client>,
    wall_budget: Duration,
) -> Result<Server, DistributedError> {
    if matches!(server.state.cfg.rule, AggregationRule::TimeUp { .. }) {
        return Err(DistributedError::UnsupportedRule("time_up"));
    }
    preflight(&server, &clients)?;
    let mut bus = Bus::new();
    let server_mb = bus.register(SERVER_ID);
    let mut handles = Vec::new();
    for mut client in clients {
        let mb = bus.register(client.state.id);
        let cbus = bus.clone();
        handles.push(std::thread::spawn(move || -> Result<Client, BusError> {
            let mut ctx = Ctx::at(VirtualTime::ZERO);
            client.start(&mut ctx);
            drain_ctx(&cbus, ctx)?;
            loop {
                let msg = mb.recv()?;
                let mut ctx = Ctx::at(VirtualTime::ZERO);
                client.handle(&msg, &mut ctx);
                if drain_ctx(&cbus, ctx)? {
                    return Ok(client);
                }
            }
        }));
    }
    // server loop on this thread
    let n_clients = handles.len();
    let deadline = std::time::Instant::now() + wall_budget;
    let mut finished = false;
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return Err(DistributedError::Timeout);
        }
        let msg = match server_mb_recv(&server_mb, remaining.min(Duration::from_millis(200))) {
            Some(Ok(m)) => m,
            Some(Err(e)) => return Err(e.into()),
            None => {
                if finished && server.state.client_reports.len() >= n_clients {
                    break;
                }
                continue;
            }
        };
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        server.handle(&msg, &mut ctx);
        finished = drain_ctx(&bus, ctx)? || finished;
        if finished && server.state.client_reports.len() >= n_clients {
            break;
        }
    }
    for h in handles {
        match h.join() {
            Ok(Ok(_client)) => {}
            Ok(Err(e)) => return Err(e.into()),
            Err(_) => return Err(DistributedError::Timeout),
        }
    }
    Ok(server)
}

/// Runs a course over real TCP sockets on localhost: the server binds an
/// ephemeral port, every client runs on its own thread with its own
/// connection, and all traffic crosses the kernel as length-prefixed wire
/// frames. Functionally equivalent to [`run_distributed`], but exercising the
/// `fs_net::tcp` transport end to end.
pub fn run_distributed_tcp(
    mut server: Server,
    clients: Vec<Client>,
    wall_budget: Duration,
) -> Result<Server, DistributedError> {
    use fs_net::tcp::{TcpHub, TcpPeer};
    if matches!(server.state.cfg.rule, AggregationRule::TimeUp { .. }) {
        return Err(DistributedError::UnsupportedRule("time_up"));
    }
    preflight(&server, &clients)?;
    let pending = TcpHub::bind("127.0.0.1:0").map_err(|_| DistributedError::Timeout)?;
    let addr = pending
        .local_addr()
        .map_err(|_| DistributedError::Timeout)?;
    let n_clients = clients.len();
    let mut handles = Vec::new();
    for mut client in clients {
        handles.push(std::thread::spawn(
            move || -> Result<(), fs_net::tcp::TcpError> {
                let mut peer = TcpPeer::connect(addr)?;
                let mut ctx = Ctx::at(VirtualTime::ZERO);
                client.start(&mut ctx);
                for out in std::mem::take(&mut ctx.outbox) {
                    peer.send(&out.msg)?;
                }
                loop {
                    let msg = peer.recv()?;
                    let mut ctx = Ctx::at(VirtualTime::ZERO);
                    client.handle(&msg, &mut ctx);
                    for out in ctx.outbox {
                        peer.send(&out.msg)?;
                    }
                    if ctx.finished {
                        return Ok(());
                    }
                }
            },
        ));
    }
    let hub = pending
        .accept(n_clients)
        .map_err(|_| DistributedError::Timeout)?;
    let deadline = std::time::Instant::now() + wall_budget;
    let mut finished = false;
    loop {
        if std::time::Instant::now() >= deadline {
            return Err(DistributedError::Timeout);
        }
        let msg = match hub.try_recv() {
            Ok(Some(m)) => m,
            Ok(None) => {
                if finished && server.state.client_reports.len() >= n_clients {
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            Err(_) => return Err(DistributedError::Timeout),
        };
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        server.handle(&msg, &mut ctx);
        debug_assert!(
            ctx.timers.is_empty(),
            "timers require the standalone runner"
        );
        for out in ctx.outbox {
            hub.send(&out.msg).map_err(|_| DistributedError::Timeout)?;
        }
        finished = ctx.finished || finished;
        if finished && server.state.client_reports.len() >= n_clients {
            break;
        }
    }
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            _ => return Err(DistributedError::Timeout),
        }
    }
    Ok(server)
}

fn server_mb_recv(
    mb: &fs_net::bus::Mailbox,
    timeout: Duration,
) -> Option<Result<fs_net::Message, BusError>> {
    // poll with short sleeps to honour the wall budget without a dedicated API
    let start = std::time::Instant::now();
    loop {
        match mb.try_recv() {
            Ok(Some(m)) => return Some(Ok(m)),
            Ok(None) => {
                if start.elapsed() >= timeout {
                    return None;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => return Some(Err(e)),
        }
    }
}
