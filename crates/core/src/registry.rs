//! The `<event, handler>` registry with the paper's conflict semantics.
//!
//! §3.2: *"each event is only permitted to be linked with one handler directly
//! during the execution process. If an event is linked with more than one
//! handler … a warning would be raised … and the latest linked handler would
//! overwrite the older ones. Finally, the handlers that take effect in an FL
//! course would be printed out and recorded in the experimental logs."*
//!
//! Registration also declares which events the handler may *emit*; the
//! completeness checker (Appendix E, `fs-verify`) builds the message-flow
//! graph from these declarations. To keep the static graph honest, dispatch
//! compares the events a handler *actually* put into the [`Ctx`] against its
//! declaration and records any undeclared emission as a conformance
//! violation (`FSV040`).

use crate::ctx::Ctx;
use crate::event::Event;
use fs_net::Message;
use std::collections::{BTreeMap, BTreeSet};

/// A handler: mutates worker state `S`, reads the triggering message, and
/// records intents in the [`Ctx`].
pub type Handler<S> = Box<dyn FnMut(&mut S, &Message, &mut Ctx) + Send>;

struct Entry<S> {
    name: String,
    emits: Vec<Event>,
    aux: bool,
    handler: Handler<S>,
}

/// Maps events to handlers for one participant.
pub struct Registry<S> {
    entries: BTreeMap<Event, Entry<S>>,
    warnings: Vec<String>,
    violation_keys: BTreeSet<(Event, Event)>,
    violations: Vec<String>,
}

impl<S> Default for Registry<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Registry<S> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            entries: BTreeMap::new(),
            warnings: Vec::new(),
            violation_keys: BTreeSet::new(),
            violations: Vec::new(),
        }
    }

    fn insert(
        &mut self,
        event: Event,
        name: String,
        emits: Vec<Event>,
        aux: bool,
        handler: Handler<S>,
    ) {
        if let Some(old) = self.entries.get(&event) {
            self.warnings.push(format!(
                "event {event} was linked to handler {:?}; overwritten by {:?}",
                old.name, name
            ));
        }
        self.entries.insert(
            event,
            Entry {
                name,
                emits,
                aux,
                handler,
            },
        );
    }

    /// Links `handler` (named `name`, declaring the events it may emit) to
    /// `event`. Re-linking an event overwrites the previous handler and
    /// records a warning, per the paper's "overwriting" principle.
    pub fn register(
        &mut self,
        event: Event,
        name: impl Into<String>,
        emits: Vec<Event>,
        handler: Handler<S>,
    ) {
        self.insert(event, name.into(), emits, false, handler);
    }

    /// Like [`Registry::register`], but marks the handler *auxiliary*: it
    /// answers an externally driven event (e.g. an operator issuing
    /// `EvalRequest`) that no in-course handler emits, so the verifier
    /// exempts it from reachability checks.
    pub fn register_aux(
        &mut self,
        event: Event,
        name: impl Into<String>,
        emits: Vec<Event>,
        handler: Handler<S>,
    ) {
        self.insert(event, name.into(), emits, true, handler);
    }

    /// Removes the handler for `event`, if any (the paper: "users can remove
    /// some handlers … to make sure the intended handlers take effect").
    pub fn unregister(&mut self, event: Event) -> bool {
        self.entries.remove(&event).is_some()
    }

    /// Invokes the handler linked to `event`, if any. Returns `true` when a
    /// handler ran. Any event the handler emits that is missing from its
    /// declared `emits` list is recorded as a conformance violation.
    pub fn dispatch(&mut self, state: &mut S, event: Event, msg: &Message, ctx: &mut Ctx) -> bool {
        if let Some(e) = self.entries.get_mut(&event) {
            let emitted_before = ctx.emitted.len();
            (e.handler)(state, msg, ctx);
            for i in emitted_before..ctx.emitted.len() {
                let em = ctx.emitted[i];
                if !e.emits.contains(&em) && self.violation_keys.insert((event, em)) {
                    self.violations.push(format!(
                        "handler '{}' for {event} emitted undeclared {em}",
                        e.name
                    ));
                }
            }
            true
        } else {
            false
        }
    }

    /// `true` when a handler is linked to `event`.
    pub fn has(&self, event: Event) -> bool {
        self.entries.contains_key(&event)
    }

    /// Warnings accumulated from conflicting registrations.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Conformance violations observed during dispatch: handlers that
    /// emitted events absent from their declared `emits` list (deduplicated
    /// per `(event, emission)` pair).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Captures the dispatch-log state (violation dedup keys + violation
    /// count) so a speculatively executed dispatch can be rolled back.
    /// Warnings only change at registration time and need no snapshot.
    pub(crate) fn log_snapshot(&self) -> (BTreeSet<(Event, Event)>, usize) {
        (self.violation_keys.clone(), self.violations.len())
    }

    /// Restores a dispatch-log state captured by [`Registry::log_snapshot`].
    pub(crate) fn log_restore(&mut self, snap: (BTreeSet<(Event, Event)>, usize)) {
        self.violation_keys = snap.0;
        self.violations.truncate(snap.1);
    }

    /// The effective `<event, handler-name>` pairs — what the paper prints
    /// into the experimental logs.
    pub fn effective_handlers(&self) -> Vec<(Event, &str)> {
        self.entries
            .iter()
            .map(|(e, en)| (*e, en.name.as_str()))
            .collect()
    }

    /// The declared message-flow edges `(event, emitted-event)`, consumed by
    /// the completeness checker.
    pub fn flow_edges(&self) -> Vec<(Event, Event)> {
        self.entries
            .iter()
            .flat_map(|(e, en)| en.emits.iter().map(move |t| (*e, *t)))
            .collect()
    }

    /// Lowers the registry into the verifier's handler specs.
    pub fn specs(&self) -> Vec<fs_verify::HandlerSpec> {
        self.entries
            .iter()
            .map(|(e, en)| fs_verify::HandlerSpec {
                event: *e,
                name: en.name.clone(),
                emits: en.emits.clone(),
                aux: en.aux,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Condition;
    use fs_net::{MessageKind, Payload};
    use fs_sim::VirtualTime;

    fn msg() -> Message {
        Message::new(1, 0, MessageKind::JoinIn, 0, Payload::Empty)
    }

    #[test]
    fn dispatch_runs_linked_handler() {
        let mut reg: Registry<u32> = Registry::new();
        reg.register(
            Event::Message(MessageKind::JoinIn),
            "count",
            vec![],
            Box::new(|s, _, _| *s += 1),
        );
        let mut state = 0u32;
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        assert!(reg.dispatch(
            &mut state,
            Event::Message(MessageKind::JoinIn),
            &msg(),
            &mut ctx
        ));
        assert_eq!(state, 1);
        assert!(!reg.dispatch(
            &mut state,
            Event::Condition(Condition::TimeUp),
            &msg(),
            &mut ctx
        ));
    }

    #[test]
    fn overwrite_warns_and_latest_wins() {
        let mut reg: Registry<u32> = Registry::new();
        let ev = Event::Message(MessageKind::JoinIn);
        reg.register(ev, "first", vec![], Box::new(|s, _, _| *s = 1));
        reg.register(ev, "second", vec![], Box::new(|s, _, _| *s = 2));
        assert_eq!(reg.warnings().len(), 1);
        assert!(reg.warnings()[0].contains("first"));
        let mut state = 0u32;
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        reg.dispatch(&mut state, ev, &msg(), &mut ctx);
        assert_eq!(state, 2);
        let eff = reg.effective_handlers();
        assert_eq!(eff, vec![(ev, "second")]);
    }

    #[test]
    fn unregister_removes_handler() {
        let mut reg: Registry<u32> = Registry::new();
        let ev = Event::Condition(Condition::GoalAchieved);
        reg.register(ev, "h", vec![], Box::new(|_, _, _| {}));
        assert!(reg.has(ev));
        assert!(reg.unregister(ev));
        assert!(!reg.has(ev));
        assert!(!reg.unregister(ev));
    }

    #[test]
    fn flow_edges_reflect_declarations() {
        let mut reg: Registry<u32> = Registry::new();
        let a = Event::Message(MessageKind::Updates);
        let b = Event::Condition(Condition::AllReceived);
        reg.register(a, "save", vec![b], Box::new(|_, _, _| {}));
        assert_eq!(reg.flow_edges(), vec![(a, b)]);
    }

    #[test]
    fn specs_carry_aux_flag() {
        let mut reg: Registry<u32> = Registry::new();
        reg.register(
            Event::Message(MessageKind::Updates),
            "save",
            vec![Event::Condition(Condition::AllReceived)],
            Box::new(|_, _, _| {}),
        );
        reg.register_aux(
            Event::Message(MessageKind::EvalRequest),
            "evaluate",
            vec![Event::Message(MessageKind::MetricsReport)],
            Box::new(|_, _, _| {}),
        );
        let specs = reg.specs();
        assert_eq!(specs.len(), 2);
        let eval = specs
            .iter()
            .find(|s| s.event == Event::Message(MessageKind::EvalRequest))
            .expect("eval spec");
        assert!(eval.aux);
        assert!(
            !specs
                .iter()
                .find(|s| s.event == Event::Message(MessageKind::Updates))
                .expect("save spec")
                .aux
        );
    }

    #[test]
    fn undeclared_emission_is_a_violation() {
        let mut reg: Registry<u32> = Registry::new();
        let ev = Event::Message(MessageKind::JoinIn);
        reg.register(
            ev,
            "sneaky",
            vec![], // declares nothing...
            Box::new(|_, _, ctx| {
                // ...but raises a condition anyway
                ctx.raise(Condition::AllJoinedIn);
            }),
        );
        let mut state = 0u32;
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        reg.dispatch(&mut state, ev, &msg(), &mut ctx);
        reg.dispatch(&mut state, ev, &msg(), &mut ctx);
        assert_eq!(reg.violations().len(), 1, "violations are deduplicated");
        assert!(reg.violations()[0].contains("sneaky"));
        assert!(reg.violations()[0].contains("all_joined_in"));
    }

    #[test]
    fn declared_emission_is_not_a_violation() {
        let mut reg: Registry<u32> = Registry::new();
        let ev = Event::Message(MessageKind::JoinIn);
        reg.register(
            ev,
            "honest",
            vec![Event::Condition(Condition::AllJoinedIn)],
            Box::new(|_, _, ctx| ctx.raise(Condition::AllJoinedIn)),
        );
        let mut state = 0u32;
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        reg.dispatch(&mut state, ev, &msg(), &mut ctx);
        assert!(reg.violations().is_empty());
    }
}
