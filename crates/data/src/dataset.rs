//! Federated dataset containers: per-client train/val/test splits.

use fs_tensor::loss::Target;
use fs_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// One split of one client's local data.
///
/// `x` stacks examples along the first dimension; `y` is either class indices
/// or real values (multi-goal regression tasks).
#[derive(Clone, Debug)]
pub struct ClientData {
    /// Features, `[N, ...]`.
    pub x: Tensor,
    /// Targets, one per example.
    pub y: Target,
}

impl ClientData {
    /// Empty dataset with the given per-example feature shape.
    pub fn empty(feature_shape: &[usize]) -> Self {
        let mut shape = vec![0usize];
        shape.extend_from_slice(feature_shape);
        Self {
            x: Tensor::zeros(&shape),
            y: Target::Classes(Vec::new()),
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.shape()[0]
    }

    /// `true` when the split holds no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-example feature element count (product of non-batch dims).
    pub fn example_numel(&self) -> usize {
        self.x.shape()[1..].iter().product()
    }

    /// Gathers the examples at `idx` into a new batch.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn batch(&self, idx: &[usize]) -> ClientData {
        let stride = self.example_numel();
        let n = self.len();
        let mut data = Vec::with_capacity(idx.len() * stride);
        for &i in idx {
            assert!(i < n, "batch index {i} out of range {n}");
            data.extend_from_slice(&self.x.data()[i * stride..(i + 1) * stride]);
        }
        let mut shape = vec![idx.len()];
        shape.extend_from_slice(&self.x.shape()[1..]);
        let y = match &self.y {
            Target::Classes(c) => Target::Classes(idx.iter().map(|&i| c[i]).collect()),
            Target::Values(v) => Target::Values(idx.iter().map(|&i| v[i]).collect()),
        };
        ClientData {
            x: Tensor::from_vec(shape, data),
            y,
        }
    }

    /// Samples a random minibatch of up to `size` examples.
    pub fn sample_batch(&self, size: usize, rng: &mut impl Rng) -> ClientData {
        let n = self.len();
        let take = size.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        idx.truncate(take);
        self.batch(&idx)
    }

    /// Histogram of class labels over `num_classes` bins (empty for
    /// regression targets).
    pub fn label_histogram(&self, num_classes: usize) -> Vec<usize> {
        let mut h = vec![0usize; num_classes];
        if let Target::Classes(c) = &self.y {
            for &y in c {
                if y < num_classes {
                    h[y] += 1;
                }
            }
        }
        h
    }
}

/// One client's local data: train / validation / test splits.
#[derive(Clone, Debug)]
pub struct ClientSplit {
    /// Training split.
    pub train: ClientData,
    /// Validation split (used by early stopping and HPO).
    pub val: ClientData,
    /// Held-out test split.
    pub test: ClientData,
}

impl ClientSplit {
    /// Splits `all` into train/val/test with the given fractions
    /// (test gets the remainder). Examples are taken in order; shuffle first
    /// if the source ordering is meaningful.
    pub fn from_fractions(all: &ClientData, train_frac: f32, val_frac: f32) -> Self {
        assert!(train_frac + val_frac <= 1.0, "fractions exceed 1");
        let n = all.len();
        let n_train = ((n as f32) * train_frac).round() as usize;
        let n_val = ((n as f32) * val_frac).round() as usize;
        let n_train = n_train.min(n);
        let n_val = n_val.min(n - n_train);
        let train_idx: Vec<usize> = (0..n_train).collect();
        let val_idx: Vec<usize> = (n_train..n_train + n_val).collect();
        let test_idx: Vec<usize> = (n_train + n_val..n).collect();
        Self {
            train: all.batch(&train_idx),
            val: all.batch(&val_idx),
            test: all.batch(&test_idx),
        }
    }

    /// Total number of examples across splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// `true` when all splits are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A federated dataset: one [`ClientSplit`] per client plus shared metadata.
#[derive(Clone, Debug)]
pub struct FedDataset {
    /// Per-client data, indexed by client id - 1 (client ids start at 1, the
    /// server is participant 0).
    pub clients: Vec<ClientSplit>,
    /// Per-example feature shape (e.g. `[1, 12, 12]` for images).
    pub feature_shape: Vec<usize>,
    /// Number of classes (0 for regression).
    pub num_classes: usize,
    /// Human-readable name used in logs and experiment output.
    pub name: String,
}

impl FedDataset {
    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Total training examples across clients (the paper's `n`).
    pub fn total_train(&self) -> usize {
        self.clients.iter().map(|c| c.train.len()).sum()
    }

    /// Per-example feature element count.
    pub fn input_dim(&self) -> usize {
        self.feature_shape.iter().product()
    }

    /// Returns a copy with every split's features flattened to `[N, D]`
    /// (for dense models consuming image-shaped datasets).
    pub fn flattened(&self) -> FedDataset {
        let d = self.input_dim();
        let mut out = self.clone();
        out.feature_shape = vec![d];
        for c in &mut out.clients {
            for part in [&mut c.train, &mut c.val, &mut c.test] {
                let n = part.x.shape()[0];
                part.x = part.x.reshape(&[n, d]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> ClientData {
        let x = Tensor::from_vec(vec![4, 2], vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1, 3.0, 3.1]);
        ClientData {
            x,
            y: Target::Classes(vec![0, 1, 0, 1]),
        }
    }

    #[test]
    fn batch_gathers_rows_and_labels() {
        let d = toy();
        let b = d.batch(&[2, 0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.x.data(), &[2.0, 2.1, 0.0, 0.1]);
        match b.y {
            Target::Classes(c) => assert_eq!(c, vec![0, 0]),
            _ => panic!("wrong target kind"),
        }
    }

    #[test]
    fn sample_batch_caps_at_len() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let b = d.sample_batch(10, &mut rng);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn sample_batch_replays_bit_identically_per_seed() {
        // regression: this path once drew from thread_rng(), so two runs of
        // the same course could train on different minibatches (FSA001)
        let d = toy();
        for seed in [0u64, 1, 42] {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let b1 = d.sample_batch(3, &mut r1);
            let b2 = d.sample_batch(3, &mut r2);
            assert_eq!(b1.x.data(), b2.x.data(), "seed {seed}: features differ");
            match (&b1.y, &b2.y) {
                (Target::Classes(a), Target::Classes(b)) => assert_eq!(a, b),
                _ => panic!("wrong target kind"),
            }
        }
        let mut ra = StdRng::seed_from_u64(0);
        let mut rb = StdRng::seed_from_u64(1);
        assert_ne!(
            d.sample_batch(3, &mut ra).x.data(),
            d.sample_batch(3, &mut rb).x.data(),
            "different seeds must draw different batches"
        );
    }

    #[test]
    fn label_histogram_counts() {
        let d = toy();
        assert_eq!(d.label_histogram(3), vec![2, 2, 0]);
    }

    #[test]
    fn from_fractions_partitions_everything() {
        let d = toy();
        let s = ClientSplit::from_fractions(&d, 0.5, 0.25);
        assert_eq!(s.train.len(), 2);
        assert_eq!(s.val.len(), 1);
        assert_eq!(s.test.len(), 1);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn values_targets_batch() {
        let x = Tensor::from_vec(vec![3, 1], vec![1.0, 2.0, 3.0]);
        let d = ClientData {
            x,
            y: Target::Values(vec![10.0, 20.0, 30.0]),
        };
        let b = d.batch(&[1]);
        match b.y {
            Target::Values(v) => assert_eq!(v, vec![20.0]),
            _ => panic!("wrong target kind"),
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_oob_panics() {
        let d = toy();
        let _ = d.batch(&[7]);
    }
}
