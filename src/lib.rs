//! # fedscope
//!
//! A Rust reproduction of **FederatedScope** (VLDB 2023): a flexible,
//! event-driven federated-learning platform for heterogeneity.
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`tensor`] — ML substrate (tensors, layers, models, optimizers)
//! * [`data`] — DataZoo: synthetic federated datasets and partitioners
//! * [`net`] — messages, wire codec (message translation), backends
//! * [`compress`] — update compression: quantization, top-k sparsification
//!   with error feedback, and delta encoding
//! * [`sim`] — virtual time, device profiles, discrete-event queue
//! * [`monitor`] — observability: spans, counters, round metrics, Chrome
//!   trace / JSONL / CSV / bench-snapshot exporters
//! * [`verify`] — static course verification & config lints with structured
//!   `FSVnnn` diagnostics (§3.6, Appendix E)
//! * [`core`] — the event-driven FL engine (workers, events, handlers,
//!   aggregators, samplers, runners, completeness checking)
//! * [`scale`] — million-client simulation core: lazy client state over an
//!   indexed event-heap, bit-identical to the legacy runner
//! * [`personalize`] — FedBN / Ditto / pFedMe / FedEM and multi-goal FL
//! * [`privacy`] — DP mechanisms, Paillier, secret sharing
//! * [`attack`] — privacy attacks (DLG, membership/property inference) and
//!   backdoors (BadNets, DBA, Neurotoxin-style, model replacement)
//! * [`autotune`] — HPO: random search, successive halving, Hyperband, PBT,
//!   FedEx
//!
//! See the `examples/` directory for runnable FL courses, and `crates/bench`
//! for the harness reproducing every table and figure of the paper.

pub use fs_attack as attack;
pub use fs_autotune as autotune;
pub use fs_compress as compress;
pub use fs_core as core;
pub use fs_data as data;
pub use fs_monitor as monitor;
pub use fs_net as net;
pub use fs_personalize as personalize;
pub use fs_privacy as privacy;
pub use fs_scale as scale;
pub use fs_sim as sim;
pub use fs_tensor as tensor;
pub use fs_verify as verify;
