//! **Figures 18–20** (Appendix I) — sampling strategies on unbiased vs
//! *biased* CIFAR-like splits.
//!
//! Figures 18/19 show the data distributions across responsiveness clusters:
//! independent (unbiased) vs rare labels owned only by slow clients
//! (bias-CIFAR). Figure 20 shows that on the unbiased split all samplers
//! perform similarly, while on bias-CIFAR compensating samplers
//! (inverse-responsiveness, group) clearly beat uniform sampling — slow
//! clients own the rare labels, and uniform sampling lets their staled
//! contributions be discounted away.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_fig18_20
//! ```

use fs_bench::output::{render_table, write_json};
use fs_core::config::{BroadcastManner, FlConfig, SamplerKind};
use fs_core::course::CourseBuilder;
use fs_core::sampler::Sampler;
use fs_data::synth::{cifar_like, cifar_like_biased, ImageConfig};
use fs_data::FedDataset;
use fs_sim::{DeviceProfile, Fleet};
use fs_tensor::model::{logistic_regression, Model};
use fs_tensor::optim::SgdConfig;
use serde::Serialize;

const N_CLIENTS: usize = 60;
const SLOW_START: usize = 40; // clients 41.. are slow
const RARE: [usize; 2] = [8, 9];

#[derive(Serialize)]
struct Outcome {
    split: String,
    sampler: String,
    overall_accuracy: f32,
    rare_label_accuracy: f32,
}

fn img_cfg() -> ImageConfig {
    ImageConfig {
        num_clients: N_CLIENTS,
        num_classes: 10,
        img: 8,
        per_client: 40,
        noise: 0.8,
        size_skew: 0.0,
        seed: 51,
    }
}

/// Two-tier fleet: fast clients (group 0) and 10x-slower clients (group 1),
/// aligned with the bias split's slow set.
fn fleet() -> Fleet {
    let profiles: Vec<DeviceProfile> = (0..N_CLIENTS)
        .map(|i| {
            let slow = i >= SLOW_START;
            DeviceProfile {
                compute_speed: if slow { 6.0 } else { 60.0 },
                bandwidth: if slow { 10_000.0 } else { 100_000.0 },
                crash_prob: 0.0,
                group: usize::from(slow),
            }
        })
        .collect();
    Fleet::from_profiles(profiles)
}

/// Rare-label accuracy of the final global model on a pooled rare-only set.
fn rare_label_accuracy(runner: &mut fs_core::StandaloneRunner, data: &FedDataset) -> f32 {
    use fs_tensor::loss::Target;
    let mut xs: Vec<f32> = Vec::new();
    let mut ys = Vec::new();
    let dim = data.input_dim();
    for c in &data.clients {
        if let Target::Classes(labels) = &c.test.y {
            for (i, &y) in labels.iter().enumerate() {
                if RARE.contains(&y) {
                    let b = c.test.batch(&[i]);
                    xs.extend_from_slice(b.x.data());
                    ys.push(y);
                }
            }
        }
    }
    if ys.is_empty() {
        return 0.0;
    }
    let x = fs_tensor::Tensor::from_vec(vec![ys.len(), dim], xs);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    use rand::SeedableRng;
    let mut model = logistic_regression(dim, data.num_classes, &mut rng);
    let mut p = model.get_params();
    p.merge_from(&runner.server.state.global);
    model.set_params(&p);
    model.evaluate(&x, &Target::Classes(ys)).accuracy
}

fn run(data: &FedDataset, sampler: &str) -> (f32, f32) {
    let dim = data.input_dim();
    let classes = data.num_classes;
    let cfg = FlConfig {
        total_rounds: 120,
        concurrency: 20,
        local_steps: 4,
        batch_size: 16,
        sgd: SgdConfig::with_lr(0.25),
        eval_every: 10,
        staleness_tolerance: 20,
        staleness_discount: 1.0,
        seed: 51,
        ..Default::default()
    }
    .async_goal(8, BroadcastManner::AfterAggregating, SamplerKind::Uniform);
    let fleet = fleet();
    let mut builder = CourseBuilder::new(
        data.clone(),
        Box::new(move |rng| Box::new(logistic_regression(dim, classes, rng)) as Box<dyn Model>),
        cfg,
    )
    .fleet(fleet.clone());
    builder = match sampler {
        "uniform" => builder,
        "responsiveness" => {
            // compensating: sample slow clients *more* (inverse speed), so
            // their rare-label data keeps entering the aggregation
            let speeds = fleet.response_speeds(64, 4000);
            let inv: Vec<f64> = speeds.iter().map(|s| 1.0 / s.max(1e-9)).collect();
            builder.sampler(Sampler::Responsiveness { speeds: inv })
        }
        "group" => {
            let groups = (0..fleet.num_groups())
                .map(|g| fleet.group_members(g))
                .collect();
            builder.sampler(Sampler::group(groups))
        }
        other => panic!("unknown sampler {other}"),
    };
    let mut runner = builder.build();
    let report = runner.run();
    let overall = report
        .history
        .last()
        .map(|r| r.metrics.accuracy)
        .unwrap_or(0.0);
    let rare = rare_label_accuracy(&mut runner, data);
    (overall, rare)
}

fn main() {
    let unbiased = cifar_like(&img_cfg(), Some(0.5)).flattened();
    let biased = cifar_like_biased(&img_cfg(), &RARE, SLOW_START).flattened();

    // Figures 18/19: label mass owned by the slow cluster
    for (name, data) in [("unbiased", &unbiased), ("bias-CIFAR", &biased)] {
        let mut fast = vec![0usize; 10];
        let mut slow = vec![0usize; 10];
        for (i, c) in data.clients.iter().enumerate() {
            let h = c.train.label_histogram(10);
            let dst = if i >= SLOW_START {
                &mut slow
            } else {
                &mut fast
            };
            for (d, v) in dst.iter_mut().zip(&h) {
                *d += v;
            }
        }
        println!(
            "{name}: rare-label examples fast={} slow={}",
            fast[8] + fast[9],
            slow[8] + slow[9]
        );
    }

    let mut outcomes = Vec::new();
    for (split, data) in [("unbiased", &unbiased), ("bias-CIFAR", &biased)] {
        for sampler in ["uniform", "responsiveness", "group"] {
            let (overall, rare) = run(data, sampler);
            eprintln!("  {split} / {sampler}: overall {overall:.4}, rare {rare:.4}");
            outcomes.push(Outcome {
                split: split.into(),
                sampler: sampler.into(),
                overall_accuracy: overall,
                rare_label_accuracy: rare,
            });
        }
    }
    println!("\nFigure 20 — sampling strategies, unbiased vs bias-CIFAR\n");
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.split.clone(),
                o.sampler.clone(),
                format!("{:.4}", o.overall_accuracy),
                format!("{:.4}", o.rare_label_accuracy),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["split", "sampler", "overall acc", "rare-label acc"],
            &rows
        )
    );
    let path = write_json("fig18_20", &outcomes).expect("write results");
    println!("wrote {path}");
}
