//! The timestamp-ordered discrete-event queue.

use crate::VirtualTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry in the queue: a payload scheduled at a virtual time.
///
/// Ties are broken by insertion sequence number, so execution is fully
/// deterministic even when many events share a timestamp (e.g. a broadcast to
/// 100 clients all stamped with the same instant).
struct Entry<T> {
    at: VirtualTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic min-heap of `(VirtualTime, T)` events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` at virtual time `at`.
    pub fn push(&mut self, at: VirtualTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, item }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.item))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_secs(3.0), "c");
        q.push(VirtualTime::from_secs(1.0), "a");
        q.push(VirtualTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = VirtualTime::from_secs(5.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(VirtualTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_secs(10.0), "late");
        q.push(VirtualTime::from_secs(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(VirtualTime::from_secs(5.0), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
