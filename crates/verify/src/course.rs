//! Course IR and the protocol checks of §3.6 / Appendix E.
//!
//! The engine lowers an assembled course into a [`CourseIr`]: the server's
//! handler table, one [`ParticipantSpec`] per *distinct* client handler set
//! (most courses have exactly one), the registry's overwrite log, and
//! optionally the config facts. [`verify_course`] then runs every analysis
//! family and returns a [`VerifyReport`].

use crate::config::{lint_config, ConfigFacts};
use crate::diag::{Code, Diagnostic, VerifyReport};
use crate::graph::FlowGraph;
use fs_net::{Condition, Event, MessageKind};
use std::collections::BTreeSet;

/// One registered `<event, handler>` pair, as declared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandlerSpec {
    /// The event the handler is registered for.
    pub event: Event,
    /// The handler's name (printed in the effective-handler log).
    pub name: String,
    /// The events the handler declares it may emit.
    pub emits: Vec<Event>,
    /// Auxiliary handlers answer externally driven events (e.g. an operator
    /// issuing `EvalRequest`); they are exempt from reachability checks.
    pub aux: bool,
}

/// A participant's (or participant group's) full handler table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParticipantSpec {
    /// Display label ("server", "clients 1–120", "client 7").
    pub label: String,
    /// The handlers, in registration order.
    pub handlers: Vec<HandlerSpec>,
}

impl ParticipantSpec {
    /// Whether any handler (aux included) is registered for `event`.
    pub fn handles(&self, event: Event) -> bool {
        self.handlers.iter().any(|h| h.event == event)
    }
}

/// The verifier's input: a whole course, lowered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CourseIr {
    /// The server's handlers.
    pub server: ParticipantSpec,
    /// One spec per distinct client handler table.
    pub client_groups: Vec<ParticipantSpec>,
    /// Registry overwrite warnings collected while assembling the course.
    pub registry_warnings: Vec<String>,
    /// Config facts, when available.
    pub config: Option<ConfigFacts>,
}

/// The event an FL course starts from: a client asking to join.
pub const START: Event = Event::Message(MessageKind::JoinIn);
/// The event that terminates an FL course.
pub const TERMINAL: Event = Event::Message(MessageKind::Finish);

/// Builds the union flow graph over every participant of the course.
pub fn union_graph(ir: &CourseIr) -> FlowGraph {
    let mut g = FlowGraph::new();
    for spec in std::iter::once(&ir.server).chain(ir.client_groups.iter()) {
        for h in &spec.handlers {
            g.add_node(h.event);
            for &e in &h.emits {
                g.add_edge(h.event, e);
            }
        }
    }
    g
}

fn subject(spec: &ParticipantSpec, h: &HandlerSpec) -> String {
    format!("{} handler '{}' ({})", spec.label, h.name, h.event)
}

/// Runs all protocol checks and config lints over the lowered course.
pub fn verify_course(ir: &CourseIr) -> VerifyReport {
    let mut report = VerifyReport::new();
    let graph = union_graph(ir);

    // ---- completeness (FSV001) -------------------------------------------
    let reachable = graph.reachable_from(START);
    let complete = reachable.contains(&TERMINAL);
    if !complete {
        let detail = if ir.server.handles(START) {
            format!("no path from {START} to {TERMINAL} in the flow graph")
        } else {
            format!("the server has no handler for the start event {START}")
        };
        report.push(
            Diagnostic::new(Code::Incomplete, "course", detail).with_suggestion(
                "ensure a handler chain leads from join-in to a handler emitting Finish",
            ),
        );
    }

    // ---- unreachable handlers (FSV002) -----------------------------------
    for spec in std::iter::once(&ir.server).chain(ir.client_groups.iter()) {
        for h in &spec.handlers {
            if h.aux || reachable.contains(&h.event) {
                continue;
            }
            report.push(
                Diagnostic::new(
                    Code::UnreachableHandler,
                    subject(spec, h),
                    format!("no reachable handler ever emits {}", h.event),
                )
                .with_suggestion("remove the handler, or register it with register_aux"),
            );
        }
    }

    // ---- dead ends (FSV003) ----------------------------------------------
    for &node in &reachable {
        if node == TERMINAL || graph.has_out_edges(node) {
            continue;
        }
        report.push(Diagnostic::new(
            Code::DeadEndEvent,
            node.to_string(),
            "reachable event whose handlers emit nothing (a sink); fine for \
             record-keeping events, a bug if the protocol should continue here",
        ));
    }

    // ---- cycles without exit (FSV004) ------------------------------------
    // Skipped when the course is already incomplete: every cycle would be
    // flagged, drowning the real finding. Also skipped when a reachable
    // `time_up` timer has a path to termination: in time-driven courses
    // (§3.3's `time_up` rule) the training loop deliberately has no graph
    // edge to Finish — the armed timer interrupts it from outside, which is
    // a valid exit the edge set cannot express.
    let timer = Event::Condition(Condition::TimeUp);
    let timer_escape = reachable.contains(&timer) && graph.can_reach(TERMINAL).contains(&timer);
    if complete && !timer_escape {
        let to_terminal = graph.can_reach(TERMINAL);
        let trapped: Vec<Event> = graph
            .on_cycle()
            .into_iter()
            .filter(|n| reachable.contains(n) && !to_terminal.contains(n))
            .collect();
        if !trapped.is_empty() {
            let names: Vec<String> = trapped.iter().map(|e| e.to_string()).collect();
            report.push(
                Diagnostic::new(
                    Code::CycleWithoutExit,
                    names.join(", "),
                    "these events form a reachable cycle from which termination \
                     cannot be reached",
                )
                .with_suggestion("give one handler on the cycle a path toward Finish"),
            );
        }
    }

    // ---- cross-participant send/receive matching (FSV005/6/7) ------------
    let any_client_handles = |k: MessageKind| {
        ir.client_groups
            .iter()
            .any(|c| c.handles(Event::Message(k)))
    };

    for h in &ir.server.handlers {
        for &e in &h.emits {
            match e {
                Event::Message(k) => {
                    if !ir.client_groups.is_empty() && !any_client_handles(k) {
                        report.push(
                            Diagnostic::new(
                                Code::ServerSendUnhandled,
                                subject(&ir.server, h),
                                format!("emits {e} but no client registers a handler for it"),
                            )
                            .with_suggestion("register a client handler for the message kind"),
                        );
                    }
                }
                Event::Condition(_) => {
                    if !ir.server.handles(e) {
                        report.push(
                            Diagnostic::new(
                                Code::ConditionUnhandled,
                                subject(&ir.server, h),
                                format!(
                                    "raises {e} but the server has no handler for it \
                                     (conditions are participant-local)"
                                ),
                            )
                            .with_suggestion("register a server handler for the condition"),
                        );
                    }
                }
            }
        }
    }

    for spec in &ir.client_groups {
        for h in &spec.handlers {
            for &e in &h.emits {
                match e {
                    Event::Message(k) => {
                        if !ir.server.handles(Event::Message(k)) {
                            report.push(
                                Diagnostic::new(
                                    Code::ClientSendUnhandled,
                                    subject(spec, h),
                                    format!("emits {e} but the server has no handler for it"),
                                )
                                .with_suggestion("register a server handler for the message kind"),
                            );
                        }
                    }
                    Event::Condition(_) => {
                        if !spec.handles(e) {
                            report.push(
                                Diagnostic::new(
                                    Code::ConditionUnhandled,
                                    subject(spec, h),
                                    format!(
                                        "raises {e} but this client has no handler for it \
                                         (conditions are participant-local)"
                                    ),
                                )
                                .with_suggestion("register the condition handler on this client"),
                            );
                        }
                    }
                }
            }
        }
    }

    // ---- registry overwrite log (FSV009) ---------------------------------
    let mut seen = BTreeSet::new();
    for w in &ir.registry_warnings {
        if seen.insert(w.clone()) {
            report.push(Diagnostic::new(
                Code::RegistryOverwrite,
                "registry",
                w.clone(),
            ));
        }
    }

    // ---- config lints (FSV02x/FSV03x) ------------------------------------
    if let Some(facts) = &ir.config {
        report.extend(lint_config(facts));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(event: Event, name: &str, emits: &[Event]) -> HandlerSpec {
        HandlerSpec {
            event,
            name: name.to_string(),
            emits: emits.to_vec(),
            aux: false,
        }
    }

    fn m(k: MessageKind) -> Event {
        Event::Message(k)
    }
    fn c(cond: Condition) -> Event {
        Event::Condition(cond)
    }

    /// The default FedAvg shape, minus evaluation niceties.
    fn vanilla_ir() -> CourseIr {
        CourseIr {
            server: ParticipantSpec {
                label: "server".into(),
                handlers: vec![
                    h(
                        m(MessageKind::JoinIn),
                        "register_client",
                        &[m(MessageKind::IdAssignment), c(Condition::AllJoinedIn)],
                    ),
                    h(
                        c(Condition::AllJoinedIn),
                        "start_training",
                        &[m(MessageKind::ModelParams)],
                    ),
                    h(
                        m(MessageKind::Updates),
                        "save_update_check_condition",
                        &[m(MessageKind::ModelParams), c(Condition::AllReceived)],
                    ),
                    h(
                        c(Condition::AllReceived),
                        "federated_aggregation",
                        &[m(MessageKind::ModelParams), c(Condition::EarlyStop)],
                    ),
                    h(
                        c(Condition::EarlyStop),
                        "terminate",
                        &[m(MessageKind::Finish)],
                    ),
                    h(m(MessageKind::MetricsReport), "record_metrics", &[]),
                ],
            },
            client_groups: vec![ParticipantSpec {
                label: "clients".into(),
                handlers: vec![
                    h(m(MessageKind::IdAssignment), "confirm_id", &[]),
                    h(
                        m(MessageKind::ModelParams),
                        "local_training",
                        &[m(MessageKind::Updates), c(Condition::PerformanceDrop)],
                    ),
                    h(c(Condition::PerformanceDrop), "count_performance_drop", &[]),
                    h(
                        m(MessageKind::Finish),
                        "finalize",
                        &[m(MessageKind::MetricsReport)],
                    ),
                ],
            }],
            registry_warnings: vec![],
            config: None,
        }
    }

    #[test]
    fn vanilla_course_is_clean() {
        let report = verify_course(&vanilla_ir());
        assert!(report.is_clean(), "{report}");
        // sinks are noted, not warned
        assert!(report.has_code(Code::DeadEndEvent));
    }

    #[test]
    fn missing_aggregation_handler_is_incomplete() {
        let mut ir = vanilla_ir();
        ir.server
            .handlers
            .retain(|h| h.event != c(Condition::AllReceived));
        let report = verify_course(&ir);
        assert!(report.has_code(Code::Incomplete), "{report}");
        // the orphaned EarlyStop handler is now unreachable too
        assert!(report.has_code(Code::UnreachableHandler));
    }

    #[test]
    fn cycle_with_no_exit_is_flagged() {
        let mut ir = vanilla_ir();
        // terminate still exists (course complete via AllReceived→EarlyStop),
        // but add a two-event custom cycle nothing escapes from.
        ir.server.handlers.push(h(
            m(MessageKind::Custom(1)),
            "ping",
            &[m(MessageKind::Custom(2))],
        ));
        ir.client_groups[0].handlers.push(h(
            m(MessageKind::Custom(2)),
            "pong",
            &[m(MessageKind::Custom(1))],
        ));
        // make the cycle reachable
        ir.server.handlers[1].emits.push(m(MessageKind::Custom(2)));
        let report = verify_course(&ir);
        assert!(report.has_code(Code::CycleWithoutExit), "{report}");
    }

    #[test]
    fn send_receive_mismatches_are_errors() {
        // server emits EvalRequest no client handles
        let mut ir = vanilla_ir();
        ir.server.handlers[1]
            .emits
            .push(m(MessageKind::EvalRequest));
        let report = verify_course(&ir);
        assert!(report.has_code(Code::ServerSendUnhandled), "{report}");

        // client emits Gradients the server does not handle
        let mut ir = vanilla_ir();
        ir.client_groups[0].handlers[1]
            .emits
            .push(m(MessageKind::Gradients));
        let report = verify_course(&ir);
        assert!(report.has_code(Code::ClientSendUnhandled), "{report}");

        // client raises a condition it has no handler for
        let mut ir = vanilla_ir();
        ir.client_groups[0].handlers[1]
            .emits
            .push(c(Condition::Custom(9)));
        let report = verify_course(&ir);
        assert!(report.has_code(Code::ConditionUnhandled), "{report}");
    }

    #[test]
    fn aux_handlers_are_exempt_from_reachability() {
        let mut ir = vanilla_ir();
        ir.client_groups[0].handlers.push(HandlerSpec {
            event: m(MessageKind::EvalRequest),
            name: "evaluate_and_report".into(),
            emits: vec![m(MessageKind::MetricsReport)],
            aux: true,
        });
        let report = verify_course(&ir);
        assert!(report.is_clean(), "{report}");
        // ...but the same handler without aux draws FSV002
        if let Some(h) = ir.client_groups[0].handlers.last_mut() {
            h.aux = false;
        }
        let report = verify_course(&ir);
        assert!(report.has_code(Code::UnreachableHandler), "{report}");
    }

    #[test]
    fn overwrites_become_notes() {
        let mut ir = vanilla_ir();
        ir.registry_warnings.push(
            "handler for receiving_MetricsReport overwritten: record_metrics -> ignore_metrics"
                .into(),
        );
        let report = verify_course(&ir);
        assert!(report.has_code(Code::RegistryOverwrite));
        assert!(report.is_clean(), "overwrites are notes: {report}");
    }
}
