//! Minimal in-repo stand-in for the `crossbeam` crate.
//!
//! Only the [`channel`] module is provided, backed by `std::sync::mpsc` with
//! a mutex-wrapped receiver so both halves are `Clone + Send` like upstream
//! crossbeam channels.

pub mod channel {
    //! Multi-producer multi-consumer unbounded channel.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Receiving on an empty or disconnected channel.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Receiving on a disconnected, drained channel.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Receiving with a deadline on an empty or disconnected channel.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline elapsed with no message.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Sending on a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; errors only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half; cloneable (receivers share one queue).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().expect("channel receiver poisoned");
            guard.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            let guard = self.inner.lock().expect("channel receiver poisoned");
            guard.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns immediately with a message, `Empty`, or `Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.inner.lock().expect("channel receiver poisoned");
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(42).unwrap();
            assert_eq!(rx.try_recv(), Ok(42));
        }

        #[test]
        fn cloned_senders_feed_one_queue() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            handle.join().unwrap();
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
