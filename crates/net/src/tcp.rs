//! TCP transport: the same wire format over real sockets.
//!
//! The paper's distributed mode runs participants as separate processes
//! connected by gRPC; this module provides the equivalent substrate on
//! `std::net`: length-prefixed wire frames, a server-side [`TcpHub`] that
//! accepts one connection per client and funnels decoded messages into a
//! single queue, and a client-side [`TcpPeer`]. The framing is trivial by
//! design — `u32` little-endian length followed by the
//! [`crate::wire`]-encoded message — so any process speaking the neutral
//! format can join a course.

use crate::message::{Message, ParticipantId};
use crate::wire::{decode_message, encode_message, CodecError};
use fs_monitor::{counters, MonitorHandle};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the data even if a writer thread panicked while
/// holding it (a poisoned stream map is still a usable stream map).
fn lock_streams(
    m: &Mutex<HashMap<ParticipantId, TcpStream>>,
) -> MutexGuard<'_, HashMap<ParticipantId, TcpStream>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Errors from the TCP transport.
#[derive(Debug)]
pub enum TcpError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer sent bytes the wire codec rejects.
    Codec(CodecError),
    /// A frame exceeded the sanity limit.
    FrameTooLarge(u32),
    /// No connection is registered for the receiver.
    UnknownReceiver(ParticipantId),
    /// The incoming queue has shut down.
    Closed,
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "io error: {e}"),
            TcpError::Codec(e) => write!(f, "codec error: {e}"),
            TcpError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            TcpError::UnknownReceiver(id) => write!(f, "no connection for participant {id}"),
            TcpError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for TcpError {}

impl From<io::Error> for TcpError {
    fn from(e: io::Error) -> Self {
        TcpError::Io(e)
    }
}

impl From<CodecError> for TcpError {
    fn from(e: CodecError) -> Self {
        TcpError::Codec(e)
    }
}

/// Upper bound on a single frame (a model of ~16M f32 parameters).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Writes one length-prefixed wire frame.
pub fn write_frame(stream: &mut TcpStream, msg: &Message) -> Result<(), TcpError> {
    write_frame_monitored(stream, msg, &MonitorHandle::null())
}

/// [`write_frame`], counting the real bytes put on the socket (4-byte length
/// prefix + encoded frame) into the monitor's `wire.*` counters.
pub fn write_frame_monitored(
    stream: &mut TcpStream,
    msg: &Message,
    monitor: &MonitorHandle,
) -> Result<(), TcpError> {
    let bytes = encode_message(msg);
    let len = bytes.len() as u32;
    if len > MAX_FRAME_BYTES {
        return Err(TcpError::FrameTooLarge(len));
    }
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(&bytes)?;
    stream.flush()?;
    monitor.add(counters::WIRE_FRAMES_OUT, 1);
    monitor.add(counters::WIRE_BYTES_OUT, 4 + u64::from(len));
    Ok(())
}

/// Reads one length-prefixed wire frame (blocking).
pub fn read_frame(stream: &mut TcpStream) -> Result<Message, TcpError> {
    read_frame_monitored(stream, &MonitorHandle::null())
}

/// [`read_frame`], counting the real bytes taken off the socket into the
/// monitor's `wire.*` counters.
pub fn read_frame_monitored(
    stream: &mut TcpStream,
    monitor: &MonitorHandle,
) -> Result<Message, TcpError> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(TcpError::FrameTooLarge(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    let msg = decode_message(&buf)?;
    monitor.add(counters::WIRE_FRAMES_IN, 1);
    monitor.add(counters::WIRE_BYTES_IN, 4 + u64::from(len));
    Ok(msg)
}

/// Server side: accepts `expected_clients` connections, spawns one reader
/// thread per connection (feeding a single incoming queue), and keeps write
/// halves addressable by the sender id of the first message each connection
/// delivers (normally `join_in`).
pub struct TcpHub {
    streams: Arc<Mutex<HashMap<ParticipantId, TcpStream>>>,
    incoming: Receiver<Message>,
    local_addr: SocketAddr,
    monitor: MonitorHandle,
}

/// A bound-but-not-yet-accepting hub: lets callers learn the ephemeral port
/// before clients connect.
pub struct PendingHub {
    listener: TcpListener,
    monitor: MonitorHandle,
}

impl PendingHub {
    /// The bound address.
    pub fn local_addr(&self) -> Result<SocketAddr, TcpError> {
        Ok(self.listener.local_addr()?)
    }

    /// Attaches an observability sink; the hub's reader threads and writes
    /// count real wire bytes and frames into it. Must be called before
    /// [`PendingHub::accept`] so the reader threads carry the handle.
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        self.monitor = monitor;
        self
    }

    /// Accepts exactly `expected_clients` connections and starts the hub.
    pub fn accept(self, expected_clients: usize) -> Result<TcpHub, TcpError> {
        TcpHub::from_listener(self.listener, expected_clients, self.monitor)
    }
}

impl TcpHub {
    /// Binds `addr` without accepting yet (use with port 0 to learn the
    /// ephemeral port before clients connect).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<PendingHub, TcpError> {
        Ok(PendingHub {
            listener: TcpListener::bind(addr)?,
            monitor: MonitorHandle::null(),
        })
    }

    /// Binds `addr` and accepts exactly `expected_clients` connections.
    /// Returns once all are connected and their reader threads run.
    pub fn listen(addr: impl ToSocketAddrs, expected_clients: usize) -> Result<TcpHub, TcpError> {
        Self::from_listener(
            TcpListener::bind(addr)?,
            expected_clients,
            MonitorHandle::null(),
        )
    }

    fn from_listener(
        listener: TcpListener,
        expected_clients: usize,
        monitor: MonitorHandle,
    ) -> Result<TcpHub, TcpError> {
        let local_addr = listener.local_addr()?;
        let streams: Arc<Mutex<HashMap<ParticipantId, TcpStream>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let (tx, incoming): (Sender<Message>, Receiver<Message>) = channel();
        for _ in 0..expected_clients {
            let (stream, _peer) = listener.accept()?;
            let tx = tx.clone();
            let streams = streams.clone();
            let mut reader = stream.try_clone()?;
            let monitor = monitor.clone();
            std::thread::spawn(move || {
                let mut registered = false;
                loop {
                    match read_frame_monitored(&mut reader, &monitor) {
                        Ok(msg) => {
                            if !registered {
                                if let Ok(s) = reader.try_clone() {
                                    lock_streams(&streams).insert(msg.sender, s);
                                }
                                registered = true;
                            }
                            if tx.send(msg).is_err() {
                                return;
                            }
                        }
                        Err(_) => return, // connection closed
                    }
                }
            });
        }
        Ok(TcpHub {
            streams,
            incoming,
            local_addr,
            monitor,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks for the next decoded incoming message.
    pub fn recv(&self) -> Result<Message, TcpError> {
        self.incoming.recv().map_err(|_| TcpError::Closed)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<Message>, TcpError> {
        match self.incoming.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(TcpError::Closed),
        }
    }

    /// Sends a message to its receiver's connection.
    pub fn send(&self, msg: &Message) -> Result<(), TcpError> {
        let mut streams = lock_streams(&self.streams);
        let stream = streams
            .get_mut(&msg.receiver)
            .ok_or(TcpError::UnknownReceiver(msg.receiver))?;
        write_frame_monitored(stream, msg, &self.monitor)
    }

    /// Ids of currently registered client connections.
    pub fn connected(&self) -> Vec<ParticipantId> {
        lock_streams(&self.streams).keys().copied().collect()
    }
}

/// Client side: one connection to the hub.
pub struct TcpPeer {
    stream: TcpStream,
    monitor: MonitorHandle,
}

impl TcpPeer {
    /// Connects to a hub.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpPeer, TcpError> {
        Ok(TcpPeer {
            stream: TcpStream::connect(addr)?,
            monitor: MonitorHandle::null(),
        })
    }

    /// Attaches an observability sink counting this peer's wire traffic.
    pub fn set_monitor(&mut self, monitor: MonitorHandle) {
        self.monitor = monitor;
    }

    /// Sends one message.
    pub fn send(&mut self, msg: &Message) -> Result<(), TcpError> {
        write_frame_monitored(&mut self.stream, msg, &self.monitor)
    }

    /// Blocks for the next message from the hub.
    pub fn recv(&mut self) -> Result<Message, TcpError> {
        read_frame_monitored(&mut self.stream, &self.monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageKind, Payload, SERVER_ID};
    use fs_tensor::{ParamMap, Tensor};

    fn join_msg(id: ParticipantId) -> Message {
        Message::new(id, SERVER_ID, MessageKind::JoinIn, 0, Payload::Empty)
    }

    #[test]
    fn frame_roundtrip_over_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_frame(&mut s).unwrap()
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut p = ParamMap::new();
        p.insert("w", Tensor::from_vec(vec![3], vec![1.0, -2.0, 3.0]));
        let msg = Message::new(
            4,
            SERVER_ID,
            MessageKind::Updates,
            7,
            Payload::Update {
                params: p,
                start_version: 6,
                n_samples: 11,
                n_steps: 2,
            },
        );
        write_frame(&mut client, &msg).unwrap();
        let got = h.join().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn hub_routes_by_first_sender() {
        let pending = TcpHub::bind("127.0.0.1:0").unwrap();
        let addr = pending.local_addr().unwrap();
        let mut handles = Vec::new();
        for id in [1u32, 2] {
            handles.push(std::thread::spawn(move || {
                let mut peer = TcpPeer::connect(addr).unwrap();
                peer.send(&join_msg(id)).unwrap();
                let reply = peer.recv().unwrap();
                assert_eq!(reply.kind, MessageKind::IdAssignment);
                assert_eq!(reply.receiver, id);
            }));
        }
        let hub = pending.accept(2).unwrap();
        let a = hub.recv().unwrap();
        let b = hub.recv().unwrap();
        let mut ids = vec![a.sender, b.sender];
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        for id in [1u32, 2] {
            hub.send(&Message::new(
                SERVER_ID,
                id,
                MessageKind::IdAssignment,
                0,
                Payload::Empty,
            ))
            .unwrap();
        }
        assert_eq!(hub.connected().len(), 2);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wire_counters_match_between_peer_and_hub() {
        use fs_monitor::RecordingMonitor;
        use std::sync::{Arc, Mutex};

        let hub_mon = Arc::new(Mutex::new(RecordingMonitor::new()));
        let peer_mon = Arc::new(Mutex::new(RecordingMonitor::new()));
        let pending = TcpHub::bind("127.0.0.1:0")
            .unwrap()
            .with_monitor(MonitorHandle::from_shared(hub_mon.clone()));
        let addr = pending.local_addr().unwrap();
        let peer_mon2 = peer_mon.clone();
        let client = std::thread::spawn(move || {
            let mut peer = TcpPeer::connect(addr).unwrap();
            peer.set_monitor(MonitorHandle::from_shared(peer_mon2));
            peer.send(&join_msg(1)).unwrap();
            let reply = peer.recv().unwrap();
            assert_eq!(reply.kind, MessageKind::IdAssignment);
        });
        let hub = pending.accept(1).unwrap();
        let joined = hub.recv().unwrap();
        assert_eq!(joined.sender, 1);
        hub.send(&Message::new(
            SERVER_ID,
            1,
            MessageKind::IdAssignment,
            0,
            Payload::Empty,
        ))
        .unwrap();
        client.join().unwrap();
        let hub_mon = hub_mon.lock().unwrap();
        let peer_mon = peer_mon.lock().unwrap();
        // what the peer put on the wire is what the hub took off, and back
        assert_eq!(
            peer_mon.counter(counters::WIRE_BYTES_OUT),
            hub_mon.counter(counters::WIRE_BYTES_IN)
        );
        assert_eq!(
            hub_mon.counter(counters::WIRE_BYTES_OUT),
            peer_mon.counter(counters::WIRE_BYTES_IN)
        );
        assert_eq!(peer_mon.counter(counters::WIRE_FRAMES_OUT), 1);
        assert_eq!(hub_mon.counter(counters::WIRE_FRAMES_IN), 1);
        // real wire bytes = 4-byte length prefix + encoded frame
        let join = join_msg(1);
        assert_eq!(
            peer_mon.counter(counters::WIRE_BYTES_OUT),
            4 + join.wire_bytes() as u64
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // write a bogus huge length prefix
            s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        h.join().unwrap();
        match read_frame(&mut client) {
            Err(TcpError::FrameTooLarge(_)) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}
