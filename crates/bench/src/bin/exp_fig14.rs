//! **Figure 14** — auto-tuning: best-seen validation loss over budget for
//! RS, SHA, and their FedEx-wrapped variants on the FEMNIST-like dataset.
//!
//! Paper's shape: the FedEx-wrapped methods' best-seen validation losses
//! decrease *more slowly* than their wrappers (worse regret), yet the
//! searched configurations reach *better* final test accuracy — fine-grained
//! client-wise exploration pays off at evaluation time.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_fig14
//! ```

use fs_autotune::objective::{FlObjective, Objective};
use fs_autotune::rs::random_search;
use fs_autotune::sha::successive_halving;
use fs_autotune::space::{Param, SearchSpace};
use fs_autotune::FedExHook;
use fs_bench::output::{render_table, write_json};
use fs_core::config::FlConfig;
use fs_data::synth::{femnist_like, ImageConfig};
use fs_tensor::model::{mlp, Model};
use fs_tensor::optim::SgdConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct MethodTrace {
    method: String,
    /// (cumulative rounds, best-seen validation loss)
    trace: Vec<(u64, f64)>,
    best_val_loss: f64,
    /// Test accuracy of the best configuration re-trained at full budget.
    final_test_accuracy: f64,
}

fn make_objective(with_fedex: bool) -> FlObjective {
    let data = femnist_like(&ImageConfig {
        num_clients: 30,
        num_classes: 10,
        img: 8,
        per_client: 24,
        noise: 0.9,
        size_skew: 0.9,
        seed: 41,
    })
    .flattened();
    let dim = data.input_dim();
    let classes = data.num_classes;
    let base = FlConfig {
        concurrency: 20,
        local_steps: 4,
        batch_size: 16,
        sgd: SgdConfig::with_lr(0.1),
        seed: 41,
        ..Default::default()
    };
    let mut obj = FlObjective::new(
        data,
        Arc::new(move |rng: &mut StdRng| Box::new(mlp(&[dim, 32, classes], rng)) as Box<dyn Model>),
        base,
    );
    if with_fedex {
        obj.trainer_hook = Some(FedExHook::new(0.2));
    }
    obj
}

fn main() {
    let space = SearchSpace::new()
        .with(
            "lr",
            Param::Float {
                lo: 0.005,
                hi: 1.5,
                log: true,
            },
        )
        .with("local_steps", Param::Int { lo: 1, hi: 8 });
    let full_budget = 25u64;
    let mut results: Vec<MethodTrace> = Vec::new();

    let methods: Vec<(&str, bool, bool)> = vec![
        ("RS", false, false),
        ("SHA", true, false),
        ("RS+FedEx", false, true),
        ("SHA+FedEx", true, true),
    ];
    for (name, use_sha, use_fedex) in methods {
        let mut obj = make_objective(use_fedex);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = if use_sha {
            successive_halving(&space, &mut obj, 12, 4, 2, &mut rng)
        } else {
            random_search(&space, &mut obj, 12, 10, &mut rng)
        };
        // re-train the searched configuration at full budget for the legend's
        // test accuracy
        let (final_result, _) = obj.run(&outcome.best_config, full_budget, None);
        let trace: Vec<(u64, f64)> = outcome
            .trace
            .iter()
            .map(|p| (p.cumulative_cost, p.best_val_loss))
            .collect();
        eprintln!(
            "  {name}: best val loss {:.4}, final test acc {:.4} (lr={:.3}, steps={})",
            outcome.best_result.val_loss,
            final_result.test_accuracy,
            outcome.best_config["lr"],
            outcome.best_config["local_steps"],
        );
        results.push(MethodTrace {
            method: name.to_string(),
            trace,
            best_val_loss: outcome.best_result.val_loss,
            final_test_accuracy: final_result.test_accuracy,
        });
    }

    println!("\nFigure 14 — HPO methods on FEMNIST-like FedAvg\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{:.4}", r.best_val_loss),
                format!("{:.4}", r.final_test_accuracy),
                r.trace.last().map_or("0".into(), |p| p.0.to_string()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["method", "best val loss", "final test acc", "rounds spent"],
            &rows
        )
    );
    let path = write_json("fig14", &results).expect("write results");
    println!("wrote {path}");
}
