//! Process-level measurements for the experiment harness.

/// Peak resident set size of this process in bytes, if the platform exposes
/// it. On Linux this reads `VmHWM` from `/proc/self/status` — the high-water
/// mark over the whole process lifetime, so sample it after the workload of
/// interest. Other platforms return `None`.
pub fn peak_rss() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// `peak_rss` as mebibytes for display, or `None` off-Linux.
pub fn peak_rss_mb() -> Option<f64> {
    peak_rss().map(|b| b as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reads_a_plausible_value() {
        // touch some memory so the high-water mark is comfortably nonzero
        let v = vec![1u8; 4 << 20];
        std::hint::black_box(&v);
        let rss = peak_rss().expect("VmHWM available on Linux");
        assert!(rss > 1 << 20, "peak RSS {rss} implausibly small");
        assert!(rss < 1 << 42, "peak RSS {rss} implausibly large");
    }

    #[test]
    fn peak_rss_mb_matches_bytes() {
        match (peak_rss(), peak_rss_mb()) {
            (Some(b), Some(mb)) => {
                assert!((mb - b as f64 / (1024.0 * 1024.0)).abs() < 1e-9)
            }
            (None, None) => {}
            other => panic!("inconsistent peak_rss forms: {other:?}"),
        }
    }
}
