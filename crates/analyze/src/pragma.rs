//! The suppression grammar: `// fsa::allow(FSA0nn, reason)`.
//!
//! A pragma lives in a comment. Placement decides its target line:
//!
//! * a comment with code before it on the same line suppresses findings on
//!   **that line** (`let x = m.lock(); // fsa::allow(FSA040, re-entrant)`);
//! * a comment alone on its line suppresses findings on the **next line
//!   that holds code** (attribute-style, stackable).
//!
//! The grammar polices itself: a pragma without a reason is `FSA090`, one
//! that suppressed nothing is `FSA091` (stale suppressions are debt, not
//! decoration), and one naming an unknown code is `FSA092`.
//!
//! Only **plain** comments (`//`, `/* … */`) carry pragmas. Doc comments
//! (`///`, `//!`, `/** … */`) are documentation — text there may *describe*
//! the grammar without being parsed as a directive.

use crate::diag::Code;
use crate::lexer::{Tok, TokKind};

/// One parsed pragma occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    /// The code named in the pragma, when it parsed as a known `FSAnnn`.
    pub code: Option<Code>,
    /// The raw code field text (kept for FSA092 messages).
    pub code_text: String,
    /// The stated reason (may be empty → FSA090).
    pub reason: String,
    /// Line the pragma comment starts on.
    pub at_line: u32,
    /// Line whose findings this pragma suppresses.
    pub applies_to: u32,
}

/// Extracts every pragma from a token stream.
///
/// `code_lines` must hold, per source line, whether any non-comment token
/// lives there (the lexer pass computes it); it drives the
/// same-line-vs-next-line placement rule.
pub fn collect_pragmas(toks: &[Tok], code_lines: &[bool]) -> Vec<Pragma> {
    let mut out = Vec::new();
    let line_has_code = |line: u32| code_lines.get(line as usize - 1).copied().unwrap_or(false);
    for t in toks {
        let is_doc = match t.kind {
            // `///` lexes as a LineComment whose text starts with `/`;
            // `//!` starts with `!`. Same for `/**` and `/*!` blocks.
            TokKind::LineComment | TokKind::BlockComment => {
                t.text.starts_with('/') || t.text.starts_with('!') || t.text.starts_with('*')
            }
            _ => continue,
        };
        if is_doc {
            continue;
        }
        for (offset, code_text, reason) in parse_comment(&t.text) {
            let at_line = t.line + offset;
            let applies_to = if line_has_code(at_line) {
                at_line
            } else {
                // alone on its line: target the next line holding code
                let mut l = at_line + 1;
                while (l as usize) <= code_lines.len() && !line_has_code(l) {
                    l += 1;
                }
                l
            };
            out.push(Pragma {
                code: Code::parse(&code_text),
                code_text,
                reason,
                at_line,
                applies_to,
            });
        }
    }
    out
}

/// Parses one comment's text, returning `(line offset, code, reason)` per
/// `fsa::allow(...)` occurrence (block comments may span lines).
fn parse_comment(text: &str) -> Vec<(u32, String, String)> {
    let mut out = Vec::new();
    for (i, line) in text.split('\n').enumerate() {
        let mut rest = line;
        while let Some(start) = rest.find("fsa::allow(") {
            rest = &rest[start + "fsa::allow(".len()..];
            let Some(end) = rest.find(')') else { break };
            let inner = &rest[..end];
            rest = &rest[end + 1..];
            let (code, reason) = match inner.split_once(',') {
                Some((c, r)) => (c.trim().to_string(), r.trim().to_string()),
                None => (inner.trim().to_string(), String::new()),
            };
            out.push((i as u32, code, reason));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code_lines(toks: &[Tok], total_lines: usize) -> Vec<bool> {
        let mut v = vec![false; total_lines];
        for t in toks {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                if let Some(slot) = v.get_mut(t.line as usize - 1) {
                    *slot = true;
                }
            }
        }
        v
    }

    fn pragmas(src: &str) -> Vec<Pragma> {
        let toks = lex(src);
        let lines = code_lines(&toks, src.lines().count() + 1);
        collect_pragmas(&toks, &lines)
    }

    #[test]
    fn trailing_pragma_targets_its_own_line() {
        let ps = pragmas("let g = m.lock(); // fsa::allow(FSA040, re-entrant by design)\n");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].code, Some(Code::NestedLock));
        assert_eq!(ps[0].applies_to, 1);
        assert_eq!(ps[0].reason, "re-entrant by design");
    }

    #[test]
    fn standalone_pragma_targets_next_code_line() {
        let src = "\n// fsa::allow(FSA001, fixture)\n// another comment\nlet r = thread_rng();\n";
        let ps = pragmas(src);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].at_line, 2);
        assert_eq!(ps[0].applies_to, 4, "skips the intervening comment line");
    }

    #[test]
    fn missing_reason_and_unknown_code_are_kept_raw() {
        let ps = pragmas("// fsa::allow(FSA001)\nx();\n// fsa::allow(FSA999, huh)\ny();\n");
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].code, Some(Code::AmbientRng));
        assert!(ps[0].reason.is_empty());
        assert_eq!(ps[1].code, None);
        assert_eq!(ps[1].code_text, "FSA999");
    }

    #[test]
    fn pragma_inside_string_is_ignored() {
        let ps = pragmas("let s = \"fsa::allow(FSA001, nope)\";\n");
        assert!(ps.is_empty());
    }

    #[test]
    fn block_comment_pragma_with_line_offset() {
        let ps = pragmas("/* docs\n   fsa::allow(FSA020, invariant)\n*/\nfoo.unwrap();\n");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].at_line, 2);
        assert_eq!(ps[0].applies_to, 4);
    }
}
