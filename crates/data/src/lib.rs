//! `fs-data` — the DataZoo: synthetic federated datasets and partitioners.
//!
//! The paper's DataZoo (§5.1, Appendix C) packages FEMNIST, CelebA, CIFAR-10,
//! Shakespeare, Twitter, Reddit, and several graph datasets. Those corpora are
//! not available here, so this crate generates *synthetic* datasets with the
//! same structural heterogeneity, which is what the evaluation actually
//! exercises:
//!
//! * [`synth::femnist_like`] — writer-partitioned image classification where
//!   every client ("writer") applies its own style transform to shared class
//!   prototypes: **feature-skew** non-IID, like FEMNIST.
//! * [`synth::cifar_like`] — image classification partitioned across clients
//!   with a Dirichlet(α) label distribution: **label-skew** non-IID, like the
//!   paper's CIFAR-10 splits (§5.2, Appendix G).
//! * [`synth::twitter_like`] — sparse bag-of-words sentiment analysis with one
//!   tiny client per "user", like the paper's Twitter subset.
//! * [`synth::cifar_like_biased`] — the Appendix-I "bias-CIFAR" split where
//!   rare labels are owned only by slow clients, coupling data and system
//!   heterogeneity.
//! * [`graphs`] — synthetic fixed-size graph tasks for the multi-goal
//!   scenarios of §3.4.2 (different clients own classification vs regression
//!   goals over a shared graph encoder).
//! * [`text`] — Shakespeare-like next-character prediction (role-partitioned,
//!   style-skewed) and CelebA-like binary attributes, rounding out the
//!   DataZoo's LEAF coverage;
//! * [`partition`] — the reusable partitioners (IID, Dirichlet) behind the
//!   generators.

pub mod dataset;
pub mod graphs;
pub mod partition;
pub mod synth;
pub mod text;

pub use dataset::{ClientData, ClientSplit, FedDataset};
