//! Events — the unit of control flow in FederatedScope (§3.2).
//!
//! Events come in exactly two classes:
//!
//! * **message-passing** events — "a message of kind K arrived" — and
//! * **condition-checking** events — "a customizable predicate became true"
//!   (`all_received`, `goal_achieved`, `time_up`, ...).
//!
//! A participant's behaviour is the set of `<event, handler>` pairs it holds.
//! The vocabulary lives here in `fs-net`, next to [`MessageKind`], so that
//! both the engine (`fs-core`) and the static verifier (`fs-verify`) can
//! speak it without depending on each other.

use crate::message::MessageKind;
use std::fmt;

/// A condition-checking event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Condition {
    /// All clients sampled this round have replied.
    AllReceived,
    /// The aggregation goal (a count of usable updates) has been reached.
    GoalAchieved,
    /// The round's time budget ran out.
    TimeUp,
    /// Every expected client has joined the course.
    AllJoinedIn,
    /// A pre-defined stop condition is satisfied (target accuracy reached,
    /// patience exhausted, or the round limit hit).
    EarlyStop,
    /// The received global model made local performance worse — clients can
    /// use this to trigger personalization (§3.2).
    PerformanceDrop,
    /// User-defined condition.
    Custom(u16),
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::AllReceived => write!(f, "all_received"),
            Condition::GoalAchieved => write!(f, "goal_achieved"),
            Condition::TimeUp => write!(f, "time_up"),
            Condition::AllJoinedIn => write!(f, "all_joined_in"),
            Condition::EarlyStop => write!(f, "early_stop"),
            Condition::PerformanceDrop => write!(f, "performance_drop"),
            Condition::Custom(c) => write!(f, "custom_condition_{c}"),
        }
    }
}

/// An event a handler can be registered for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Event {
    /// Receiving a message of the given kind.
    Message(MessageKind),
    /// A condition becoming true.
    Condition(Condition),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Message(k) => write!(f, "receiving_{k:?}"),
            Event::Condition(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper_vocabulary() {
        assert_eq!(Condition::AllReceived.to_string(), "all_received");
        assert_eq!(Condition::GoalAchieved.to_string(), "goal_achieved");
        assert_eq!(Condition::TimeUp.to_string(), "time_up");
        assert_eq!(
            Event::Message(MessageKind::ModelParams).to_string(),
            "receiving_ModelParams"
        );
    }

    #[test]
    fn events_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Event::Message(MessageKind::JoinIn));
        s.insert(Event::Condition(Condition::TimeUp));
        s.insert(Event::Condition(Condition::TimeUp));
        assert_eq!(s.len(), 2);
    }
}
