//! Criterion: the blocked matmul kernels against the naive baseline.
//!
//! The acceptance bar for the kernel overhaul is >= 3x on the
//! 128x256x128 product vs [`Tensor::matmul_naive`]; `exp_perf` re-measures
//! the same shapes outside criterion and persists them in
//! `BENCH_perf.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use fs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(vec![rows, cols], data)
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("matmul");

    for &(m, k, n) in &[(64usize, 64usize, 64usize), (128, 256, 128)] {
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        group.bench_function(&format!("naive_{m}x{k}x{n}")[..], |bench| {
            bench.iter(|| std::hint::black_box(&a).matmul_naive(std::hint::black_box(&b)))
        });
        group.bench_function(&format!("blocked_{m}x{k}x{n}")[..], |bench| {
            bench.iter(|| std::hint::black_box(&a).matmul(std::hint::black_box(&b)))
        });
        let bt = b.t(); // [n, k] layout for the transposed-RHS path
        let mut out = Tensor::zeros(&[m, n]);
        let mut scratch = Vec::new();
        group.bench_function(&format!("nt_into_{m}x{k}x{n}")[..], |bench| {
            bench.iter(|| {
                std::hint::black_box(&a).matmul_nt_into(
                    std::hint::black_box(&bt),
                    &mut out,
                    &mut scratch,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
