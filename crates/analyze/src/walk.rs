//! Deterministic workspace traversal.
//!
//! Scans the first-party source trees only: the root crate's `src/`,
//! `tests/`, `examples/`, and every `crates/*/{src,tests,benches,examples}`.
//! `vendored/` (external code), `target/`, and fixture corpora are out of
//! scope. Results are sorted so reports and baselines are stable across
//! platforms and filesystems.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// All `.rs` files to analyze under `root`, workspace-relative, sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots: Vec<PathBuf> = Vec::new();
    for top in ["src", "tests", "examples", "benches"] {
        let p = root.join(top);
        if p.is_dir() {
            roots.push(p);
        }
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for d in dirs {
            for sub in ["src", "tests", "benches", "examples"] {
                let p = d.join(sub);
                if p.is_dir() {
                    roots.push(p);
                }
            }
        }
    }
    let mut files = Vec::new();
    for r in &roots {
        collect_rs(r, &mut files)?;
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from))
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') {
            continue;
        }
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_this_workspace_deterministically() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).expect("walk");
        assert!(files
            .iter()
            .any(|p| p.ends_with("crates/analyze/src/walk.rs")));
        assert!(files.iter().any(|p| p.starts_with("tests")));
        assert!(!files.iter().any(|p| p.starts_with("vendored")));
        assert!(!files.iter().any(|p| p.starts_with("target")));
        assert!(
            !files
                .iter()
                .any(|p| p.components().any(|c| c.as_os_str() == "fixtures")),
            "the known-bad corpus must not be linted as workspace source"
        );
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
