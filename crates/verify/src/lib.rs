//! # fs-verify — static course verification & config lints
//!
//! FederatedScope (§3.6, Appendix E) checks an FL course *before* running
//! it: the framework builds a message-flow graph from the registered
//! `<event, handler>` pairs and their declared emissions, verifies that a
//! path exists from the course start to its termination, and prints the
//! handlers that take effect. This crate is that checker, grown into a small
//! static-analysis engine with structured diagnostics:
//!
//! * **protocol checks** ([`course::verify_course`]) — completeness
//!   (join-in → Finish), unreachable handlers, dead-end events, reachable
//!   cycles with no exit to termination, and cross-participant send/receive
//!   matching;
//! * **config lints** ([`config::lint_config`]) — range and consistency
//!   checks over the course configuration (zero rounds, empty sample target,
//!   inert staleness settings, codec parameters out of range, ...);
//! * **declaration conformance** — the engine records what handlers *actually*
//!   emit during dispatch and reports [`Code::UndeclaredEmit`] mismatches, so
//!   the static graph provably matches runtime behaviour.
//!
//! Every finding is a [`Diagnostic`] with a stable `FSVnnn` [`Code`], a
//! [`Severity`], a subject, and a suggested fix; a [`VerifyReport`] renders
//! them as the diagnostic table the CLI prints. The crate deliberately
//! depends only on `fs-net` (the event vocabulary): the engine lowers its
//! courses into the [`course::CourseIr`] / [`config::ConfigFacts`] IR defined
//! here, which keeps `fs-verify` usable from both the standalone and the
//! distributed runners without a dependency cycle.

// Library code must surface malformed input as typed errors, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod course;
pub mod diag;
pub mod graph;

pub use config::{lint_config, CodecFacts, ConfigFacts, RuleFacts};
pub use course::{union_graph, verify_course, CourseIr, HandlerSpec, ParticipantSpec};
pub use diag::{Code, Diagnostic, Severity, VerifyReport};
pub use graph::FlowGraph;

/// What runners do with verification results before starting a course.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// Verify and refuse to start on Errors (the default).
    #[default]
    Enforce,
    /// Verify, report, and run anyway.
    Warn,
    /// Skip verification entirely.
    Skip,
}
