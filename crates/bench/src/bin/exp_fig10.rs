//! **Figure 10** — distribution of per-client *effective aggregation counts*
//! on the FEMNIST-like dataset.
//!
//! Paper's shape: under `Sync-OS` some clients **never** contribute
//! (`Pr[count = 0] > 0` — the perpetual victims of over-selection), while
//! vanilla sync and the asynchronous strategies produce concentrated
//! distributions with no starved clients.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_fig10
//! ```

use fs_bench::output::{ascii_histogram, write_json};
use fs_bench::strategies::Strategy;
use fs_bench::workloads::femnist;
use serde::Serialize;

#[derive(Serialize)]
struct Dist {
    strategy: String,
    /// count histogram: index = effective aggregation count bucket
    histogram: Vec<usize>,
    fraction_starved: f64,
}

fn main() {
    // a larger fleet than Table 1 so that each client is sampled only a
    // handful of times (the paper samples 130 of 3,597 writers) — this is
    // what exposes over-selection's perpetual victims
    let mut wl = femnist(7);
    wl.dataset = fs_data::synth::femnist_like(&fs_data::synth::ImageConfig {
        num_clients: 150,
        num_classes: 10,
        img: 8,
        per_client: 20,
        noise: 0.35,
        size_skew: 0.0,
        seed: 7,
    });
    // moderate heterogeneity: over-selection victims are the bottom ~quarter
    // of each *sample* (not an extreme tail), while async staleness stays
    // within the tolerance — exactly the paper's operating point
    wl.fleet_cfg.num_clients = 150;
    wl.fleet_cfg.speed_sigma = 1.0;
    wl.base_cfg.concurrency = 25;
    wl.aggregation_goal = 12;
    let n_clients = wl.dataset.num_clients();
    let strategies = [
        Strategy::SyncVanilla,
        Strategy::SyncOverSelection,
        Strategy::GoalAggrUnif,
    ];
    let mut dists = Vec::new();
    for strat in strategies {
        let mut cfg = strat.configure(&wl);
        cfg.target_accuracy = None;
        cfg.total_rounds = if strat.is_async() { 100 } else { 40 };
        let mut runner = wl.build(cfg);
        runner.run();
        let counts: Vec<u64> = (1..=n_clients as u32)
            .map(|c| runner.server.state.agg_count.get(&c).copied().unwrap_or(0))
            .collect();
        let max = *counts.iter().max().unwrap_or(&0) as usize;
        let mut hist = vec![0usize; max + 1];
        for &c in &counts {
            hist[c as usize] += 1;
        }
        let starved = counts.iter().filter(|&&c| c == 0).count() as f64 / n_clients as f64;
        println!(
            "\n{} — effective aggregation count per client",
            strat.label()
        );
        let buckets: Vec<(String, usize)> = hist
            .iter()
            .enumerate()
            .map(|(i, &c)| (i.to_string(), c))
            .collect();
        println!("{}", ascii_histogram(&buckets, 40));
        println!("Pr[count = 0] = {starved:.3}");
        dists.push(Dist {
            strategy: strat.label().to_string(),
            histogram: hist,
            fraction_starved: starved,
        });
    }
    // the paper's claim, asserted
    let starved = |label: &str| {
        dists
            .iter()
            .find(|d| d.strategy == label)
            .map(|d| d.fraction_starved)
            .unwrap_or(0.0)
    };
    println!(
        "\nSync-OS starves {:.1}% of clients; vanilla {:.1}%; async {:.1}%",
        100.0 * starved("Sync-OS"),
        100.0 * starved("Sync-vanilla"),
        100.0 * starved("Goal-Aggr-Unif"),
    );
    let path = write_json("fig10", &dists).expect("write results");
    println!("wrote {path}");
}
