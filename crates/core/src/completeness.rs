//! Completeness checking (§3.6, Appendix E).
//!
//! FederatedScope "generates a directed graph to verify the flow of message
//! transmission in the constructed FL course": nodes are events, edges go
//! from an event to the events its handler may emit (declared at
//! registration). A complete course has at least one path from the *start*
//! node (the client join-in) to the *termination* node (the finish message);
//! nodes unreachable from start are redundant and produce warnings.
//!
//! The graph machinery itself now lives in [`fs_verify::graph`], where the
//! full static-analysis engine builds on it; this module keeps the original
//! course-facing API and remains the quick yes/no completeness probe. For
//! structured diagnostics use [`crate::verify`].

use crate::client::Client;
use crate::event::Event;
use crate::server::Server;
use fs_net::MessageKind;
use std::collections::BTreeSet;

/// The combined message-flow graph of a course.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    inner: fs_verify::FlowGraph,
}

impl FlowGraph {
    /// Builds the graph from a server and its clients' registered handlers.
    pub fn from_course(server: &Server, clients: &[&Client]) -> Self {
        let mut g = FlowGraph::default();
        for (from, to) in server.flow_edges() {
            g.add_edge(from, to);
        }
        for c in clients {
            for (from, to) in c.flow_edges() {
                g.add_edge(from, to);
            }
        }
        g
    }

    /// Adds an edge (and both nodes).
    pub fn add_edge(&mut self, from: Event, to: Event) {
        self.inner.add_edge(from, to);
    }

    /// All nodes reachable from `start` (inclusive).
    pub fn reachable_from(&self, start: Event) -> BTreeSet<Event> {
        self.inner.reachable_from(start)
    }

    /// Verifies the course: the start node is the clients' `join_in` message,
    /// the termination node is the `Finish` message.
    pub fn check(&self) -> CompletenessReport {
        let start = Event::Message(MessageKind::JoinIn);
        let terminal = Event::Message(MessageKind::Finish);
        let reachable = self.reachable_from(start);
        let complete = reachable.contains(&terminal);
        let redundant: Vec<Event> = self
            .inner
            .nodes()
            .filter(|n| !reachable.contains(n))
            .collect();
        CompletenessReport {
            complete,
            redundant,
        }
    }

    /// Node count (for tests and logs).
    pub fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }
}

/// Result of a completeness check.
#[derive(Clone, Debug)]
pub struct CompletenessReport {
    /// `true` when a start-to-termination path exists.
    pub complete: bool,
    /// Events unreachable from the start node (redundant handlers; the paper
    /// raises warnings for these).
    pub redundant: Vec<Event>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Condition;

    #[test]
    fn manual_complete_graph() {
        let mut g = FlowGraph::default();
        let join = Event::Message(MessageKind::JoinIn);
        let model = Event::Message(MessageKind::ModelParams);
        let updates = Event::Message(MessageKind::Updates);
        let all = Event::Condition(Condition::AllReceived);
        let stop = Event::Condition(Condition::EarlyStop);
        let finish = Event::Message(MessageKind::Finish);
        g.add_edge(join, model);
        g.add_edge(model, updates);
        g.add_edge(updates, all);
        g.add_edge(all, model);
        g.add_edge(all, stop);
        g.add_edge(stop, finish);
        let r = g.check();
        assert!(r.complete);
        assert!(r.redundant.is_empty());
    }

    #[test]
    fn missing_termination_is_incomplete() {
        let mut g = FlowGraph::default();
        g.add_edge(
            Event::Message(MessageKind::JoinIn),
            Event::Message(MessageKind::ModelParams),
        );
        let r = g.check();
        assert!(!r.complete);
    }

    #[test]
    fn unreachable_nodes_reported_redundant() {
        let mut g = FlowGraph::default();
        let join = Event::Message(MessageKind::JoinIn);
        let finish = Event::Message(MessageKind::Finish);
        g.add_edge(join, finish);
        // a disconnected custom exchange, like M3/M4 in the paper's figure
        g.add_edge(
            Event::Message(MessageKind::Custom(3)),
            Event::Message(MessageKind::Custom(4)),
        );
        let r = g.check();
        assert!(r.complete);
        assert_eq!(r.redundant.len(), 2);
    }
}
