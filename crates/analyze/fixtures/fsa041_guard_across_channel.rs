// FSA041 fixture: a lock guard held across a channel operation.
pub fn publish(state: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let guard = lock(state);
    tx.send(*guard).ok();
    drop(guard);
}

fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().expect("poisoned")
}
