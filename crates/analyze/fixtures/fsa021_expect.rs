// FSA021 fixture: expect on a runtime path.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("nonempty by contract")
}
