//! Cross-backend parameter stores (§3.5).
//!
//! In the paper, some clients run PyTorch and others TensorFlow; each declares
//! its own computation graph and they interoperate only through message
//! translation. We reproduce the mechanism with two parameter stores that use
//! genuinely different native layouts:
//!
//! * [`RowMajorF32Store`] — "torch-like": row-major `f32`, the same layout as
//!   the neutral format;
//! * [`ColMajorF64Store`] — "tf-like": column-major `f64` matrices, so both
//!   the element order and the precision differ from the wire format.
//!
//! Both implement [`Backend`]; converting between them *must* go through
//! [`Backend::encode`] / [`Backend::decode`], exactly like the paper's
//! encoding/decoding procedures.

use crate::wire::{decode_params, encode_params, CodecError};
use bytes::Bytes;
use fs_compress::{decompress, CompressedBlock, DecompressError};
use fs_tensor::{ParamMap, Tensor};
use std::collections::BTreeMap;

fn decompress_to_params(
    block: &CompressedBlock,
    reference: Option<&ParamMap>,
) -> Result<ParamMap, CodecError> {
    decompress(block, reference).map_err(|e| match e {
        DecompressError::MissingReference(v) => CodecError::MissingReference(v),
        DecompressError::UnknownName(_) => CodecError::BadName,
        DecompressError::ShapeMismatch(_) => CodecError::BadShape,
    })
}

/// A backend-native parameter store that can translate to/from the neutral
/// wire format.
pub trait Backend {
    /// Human-readable backend name (shows up in course logs).
    fn name(&self) -> &'static str;

    /// Encodes the native parameters into the neutral wire format.
    fn encode(&self) -> Bytes;

    /// Decodes neutral wire bytes into the native representation, replacing
    /// matching entries.
    fn decode(&mut self, wire: &[u8]) -> Result<(), CodecError>;

    /// Decodes a compressed payload block (dense, quantized, sparse, or a
    /// delta against `reference`) into the native representation. Every
    /// backend must accept every block variant — compression happens in the
    /// neutral format, so it is backend-agnostic by construction.
    fn decode_compressed(
        &mut self,
        block: &CompressedBlock,
        reference: Option<&ParamMap>,
    ) -> Result<(), CodecError>;
}

/// Row-major `f32` store ("torch-like") — native layout equals the wire
/// layout, so translation is a direct copy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RowMajorF32Store {
    params: ParamMap,
}

impl RowMajorF32Store {
    /// Wraps an existing parameter map.
    pub fn new(params: ParamMap) -> Self {
        Self { params }
    }

    /// Native view.
    pub fn params(&self) -> &ParamMap {
        &self.params
    }

    /// Mutable native view.
    pub fn params_mut(&mut self) -> &mut ParamMap {
        &mut self.params
    }
}

impl Backend for RowMajorF32Store {
    fn name(&self) -> &'static str {
        "row-major-f32"
    }

    fn encode(&self) -> Bytes {
        encode_params(&self.params)
    }

    fn decode(&mut self, wire: &[u8]) -> Result<(), CodecError> {
        self.params = decode_params(wire)?;
        Ok(())
    }

    fn decode_compressed(
        &mut self,
        block: &CompressedBlock,
        reference: Option<&ParamMap>,
    ) -> Result<(), CodecError> {
        self.params = decompress_to_params(block, reference)?;
        Ok(())
    }
}

/// Column-major `f64` store ("tf-like").
///
/// 2-D tensors are kept transposed in `f64`; 1-D tensors are kept as `f64`
/// vectors. Translation therefore exercises both a layout permutation and a
/// precision conversion in each direction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColMajorF64Store {
    /// name -> (row-major shape, column-major f64 data)
    entries: BTreeMap<String, (Vec<usize>, Vec<f64>)>,
}

impl ColMajorF64Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads from a row-major `f32` [`ParamMap`] (e.g. model initialization).
    pub fn from_params(params: &ParamMap) -> Self {
        let mut s = Self::new();
        s.load(params);
        s
    }

    fn load(&mut self, params: &ParamMap) {
        self.entries.clear();
        for (name, t) in params.iter() {
            let data = if t.shape().len() == 2 {
                let (m, n) = (t.shape()[0], t.shape()[1]);
                let mut col = vec![0.0f64; m * n];
                for i in 0..m {
                    for j in 0..n {
                        col[j * m + i] = t.at(i, j) as f64;
                    }
                }
                col
            } else {
                t.data().iter().map(|&v| v as f64).collect()
            };
            self.entries
                .insert(name.to_string(), (t.shape().to_vec(), data));
        }
    }

    /// Converts the native store back to a row-major `f32` map.
    pub fn to_params(&self) -> ParamMap {
        let mut out = ParamMap::new();
        for (name, (shape, col)) in &self.entries {
            let data: Vec<f32> = if shape.len() == 2 {
                let (m, n) = (shape[0], shape[1]);
                let mut row = vec![0.0f32; m * n];
                for i in 0..m {
                    for j in 0..n {
                        row[i * n + j] = col[j * m + i] as f32;
                    }
                }
                row
            } else {
                col.iter().map(|&v| v as f32).collect()
            };
            out.insert(name.clone(), Tensor::from_vec(shape.clone(), data));
        }
        out
    }

    /// Direct access to a native (column-major) entry, for tests.
    pub fn native(&self, name: &str) -> Option<&(Vec<usize>, Vec<f64>)> {
        self.entries.get(name)
    }
}

impl Backend for ColMajorF64Store {
    fn name(&self) -> &'static str {
        "col-major-f64"
    }

    fn encode(&self) -> Bytes {
        encode_params(&self.to_params())
    }

    fn decode(&mut self, wire: &[u8]) -> Result<(), CodecError> {
        let params = decode_params(wire)?;
        self.load(&params);
        Ok(())
    }

    fn decode_compressed(
        &mut self,
        block: &CompressedBlock,
        reference: Option<&ParamMap>,
    ) -> Result<(), CodecError> {
        let params = decompress_to_params(block, reference)?;
        self.load(&params);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParamMap {
        let mut p = ParamMap::new();
        p.insert(
            "w",
            Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        );
        p.insert("b", Tensor::from_vec(vec![3], vec![0.1, 0.2, 0.3]));
        p
    }

    #[test]
    fn col_major_native_layout_differs() {
        let s = ColMajorF64Store::from_params(&sample());
        let (_, col) = s.native("w").unwrap();
        // row-major [1,2,3,4,5,6] -> col-major [1,4,2,5,3,6]
        assert_eq!(col, &vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn cross_backend_roundtrip_via_wire() {
        let torch = RowMajorF32Store::new(sample());
        let wire = torch.encode();
        let mut tf = ColMajorF64Store::new();
        tf.decode(&wire).unwrap();
        // tf -> wire -> torch again
        let wire2 = tf.encode();
        let mut torch2 = RowMajorF32Store::default();
        torch2.decode(&wire2).unwrap();
        assert_eq!(torch.params(), torch2.params());
    }

    #[test]
    fn names_identify_backends() {
        assert_ne!(
            RowMajorF32Store::default().name(),
            ColMajorF64Store::new().name()
        );
    }

    #[test]
    fn decode_error_propagates() {
        let mut tf = ColMajorF64Store::new();
        assert!(tf.decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn both_backends_decode_every_compressed_variant() {
        use fs_compress::{Compressor, DeltaEncode, Identity, TopK, UniformQuant};
        let p = sample();
        let codecs: Vec<Box<dyn Compressor>> = vec![
            Box::new(Identity),
            Box::new(UniformQuant::new(8)),
            Box::new(UniformQuant::new(4)),
            Box::new(TopK::new(0.5)),
            Box::new(DeltaEncode::new(Box::new(UniformQuant::new(8)))),
        ];
        for mut codec in codecs {
            codec.set_reference(&p, 3); // no-op for non-delta codecs
            let block = codec.compress(&p);
            let reference = block.delta.then_some(&p);
            let mut torch = RowMajorF32Store::default();
            torch.decode_compressed(&block, reference).unwrap();
            let mut tf = ColMajorF64Store::new();
            tf.decode_compressed(&block, reference).unwrap();
            // both backends must reconstruct the same parameters, reachable
            // only through the neutral compressed format
            assert_eq!(
                torch.params(),
                &tf.to_params(),
                "backend disagreement under codec {}",
                codec.name()
            );
        }
    }

    #[test]
    fn delta_without_reference_reports_missing_version() {
        use fs_compress::{Compressor, DeltaEncode, Identity};
        let mut codec = DeltaEncode::new(Box::new(Identity));
        codec.set_reference(&sample(), 42);
        let block = codec.compress(&sample());
        let mut torch = RowMajorF32Store::default();
        assert_eq!(
            torch.decode_compressed(&block, None),
            Err(CodecError::MissingReference(42))
        );
    }
}
