//! `fs-privacy` — privacy-protection plug-ins (§4.1).
//!
//! FederatedScope treats privacy protection as *behavior plug-ins*: operators
//! applied to messages before they are shared. Provided here:
//!
//! * [`dp`] — differential privacy: clipping, the Gaussian and Laplace
//!   mechanisms over [`fs_tensor::ParamMap`]s, `(epsilon, delta)` calibration,
//!   and a composition accountant;
//! * [`paillier`] — the Paillier additively homomorphic cryptosystem for
//!   cross-silo FL, on top of
//! * [`bignum`] — a from-scratch arbitrary-precision integer implementation
//!   (no external bignum crates), with modular exponentiation, inverses, and
//!   Miller–Rabin primality testing;
//! * [`secret_sharing`] — additive secret sharing over `Z_{2^64}` and the
//!   secure-aggregation flow for FedAvg.
//!
//! None of this is hardened cryptography (the bignum is not constant-time and
//! test key sizes are small); it reproduces the paper's functionality for
//! research use.

pub mod bignum;
pub mod dp;
pub mod paillier;
pub mod secret_sharing;

pub use bignum::BigUint;
pub use dp::{gaussian_mechanism, laplace_mechanism, DpConfig, PrivacyAccountant};
