//! Synthetic dataset generators with controllable heterogeneity.
//!
//! Each generator builds a full [`FedDataset`]: shared class *prototypes*
//! define the learning problem; per-client transforms and label distributions
//! inject exactly the kind of heterogeneity the corresponding real dataset
//! exhibits (writer styles for FEMNIST, Dirichlet label skew for CIFAR-10,
//! tiny skewed users for Twitter).

use crate::dataset::{ClientData, ClientSplit, FedDataset};
use crate::partition::LabelPartition;
use fs_tensor::loss::Target;
use fs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Configuration shared by the image-like generators.
#[derive(Clone, Debug)]
pub struct ImageConfig {
    /// Number of clients.
    pub num_clients: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Square image side length.
    pub img: usize,
    /// Training examples per client.
    pub per_client: usize,
    /// Observation noise standard deviation.
    pub noise: f32,
    /// Log-normal sigma of per-client dataset sizes (0 = every client owns
    /// exactly `per_client` examples; larger values make sizes heterogeneous,
    /// as in real federated populations).
    pub size_skew: f64,
    /// RNG seed (the whole dataset is a pure function of the config).
    pub seed: u64,
}

impl Default for ImageConfig {
    fn default() -> Self {
        Self {
            num_clients: 50,
            num_classes: 10,
            img: 8,
            per_client: 30,
            noise: 0.35,
            size_skew: 0.0,
            seed: 7,
        }
    }
}

/// Smooth random class prototypes: each class is a random mixture of a few
/// Gaussian bumps on the image plane.
fn prototypes(num_classes: usize, img: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let mut protos = Vec::with_capacity(num_classes);
    for _ in 0..num_classes {
        let mut p = vec![0.0f32; img * img];
        let bumps = 3;
        for _ in 0..bumps {
            let cx: f32 = rng.gen::<f32>() * img as f32;
            let cy: f32 = rng.gen::<f32>() * img as f32;
            let amp: f32 = 0.5 + rng.gen::<f32>();
            let sig: f32 = 0.8 + rng.gen::<f32>() * 1.5;
            for y in 0..img {
                for x in 0..img {
                    let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                    p[y * img + x] += amp * (-d2 / (2.0 * sig * sig)).exp();
                }
            }
        }
        protos.push(p);
    }
    protos
}

fn build_image_dataset(
    cfg: &ImageConfig,
    partition: &LabelPartition,
    writer_style: bool,
    name: &str,
) -> FedDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let protos = prototypes(cfg.num_classes, cfg.img, &mut rng);
    let noise = Normal::new(0.0, cfg.noise as f64).expect("valid noise");
    let d = cfg.img * cfg.img;
    let mut clients = Vec::with_capacity(cfg.num_clients);
    for c in 0..cfg.num_clients {
        // writer style: per-client contrast/brightness plus a fixed offset
        // pattern, giving FEMNIST-like feature skew.
        let (contrast, brightness, offset): (f32, f32, Vec<f32>) = if writer_style {
            let contrast = 0.6 + rng.gen::<f32>() * 0.8;
            let brightness = (rng.gen::<f32>() - 0.5) * 0.6;
            let offset: Vec<f32> = (0..d).map(|_| (rng.gen::<f32>() - 0.5) * 0.5).collect();
            (contrast, brightness, offset)
        } else {
            (1.0, 0.0, vec![0.0; d])
        };
        let n = if cfg.size_skew > 0.0 {
            let ln = rand_distr::LogNormal::new(0.0, cfg.size_skew).expect("valid skew");
            ((cfg.per_client as f64) * ln.sample(&mut rng))
                .round()
                .max(6.0) as usize
        } else {
            cfg.per_client
        };
        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let y = partition.sample_label(c, &mut rng);
            labels.push(y);
            let proto = &protos[y];
            for i in 0..d {
                let v =
                    proto[i] * contrast + brightness + offset[i] + noise.sample(&mut rng) as f32;
                data.push(v);
            }
        }
        let x = Tensor::from_vec(vec![n, 1, cfg.img, cfg.img], data);
        let all = ClientData {
            x,
            y: Target::Classes(labels),
        };
        clients.push(ClientSplit::from_fractions(&all, 0.7, 0.15));
    }
    FedDataset {
        clients,
        feature_shape: vec![1, cfg.img, cfg.img],
        num_classes: cfg.num_classes,
        name: name.to_string(),
    }
}

/// FEMNIST-like: IID labels, strong per-writer feature skew.
pub fn femnist_like(cfg: &ImageConfig) -> FedDataset {
    let partition = LabelPartition::iid(cfg.num_clients, cfg.num_classes);
    build_image_dataset(cfg, &partition, true, "femnist-like")
}

/// CIFAR-like: identical feature distribution, Dirichlet(α) label skew.
/// `alpha = None` produces the IID split of Appendix G.
pub fn cifar_like(cfg: &ImageConfig, alpha: Option<f64>) -> FedDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(31).wrapping_add(1));
    let partition = match alpha {
        Some(a) => LabelPartition::dirichlet(cfg.num_clients, cfg.num_classes, a, &mut rng),
        None => LabelPartition::iid(cfg.num_clients, cfg.num_classes),
    };
    let name = match alpha {
        Some(a) => format!("cifar-like(alpha={a})"),
        None => "cifar-like(iid)".to_string(),
    };
    build_image_dataset(cfg, &partition, false, &name)
}

/// Appendix-I "bias-CIFAR": `rare_labels` exist only on clients with index
/// `>= slow_start` (the slow-responding group built by `fs-sim`).
pub fn cifar_like_biased(
    cfg: &ImageConfig,
    rare_labels: &[usize],
    slow_start: usize,
) -> FedDataset {
    let partition = LabelPartition::biased(
        cfg.num_clients,
        cfg.num_classes,
        rare_labels,
        slow_start,
        0.6,
    );
    build_image_dataset(cfg, &partition, false, "bias-cifar-like")
}

/// Configuration for the Twitter-like generator.
#[derive(Clone, Debug)]
pub struct TwitterConfig {
    /// Number of clients ("users").
    pub num_clients: usize,
    /// Vocabulary size (bag-of-words dimension).
    pub vocab: usize,
    /// Words per text.
    pub words_per_text: usize,
    /// Texts per user (paper: ~2.4 texts/user; we default to a handful so
    /// every user has train+val+test examples).
    pub per_client: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        Self {
            num_clients: 200,
            vocab: 60,
            words_per_text: 12,
            per_client: 10,
            seed: 11,
        }
    }
}

/// Twitter-like sentiment: two topic word distributions (positive/negative);
/// every user mixes them with a private skew and label prior, producing many
/// tiny non-IID clients, each a bag-of-words binary-classification problem.
pub fn twitter_like(cfg: &TwitterConfig) -> FedDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // topic word-preference logits
    let pos_pref: Vec<f32> = (0..cfg.vocab).map(|_| rng.gen::<f32>()).collect();
    let neg_pref: Vec<f32> = (0..cfg.vocab).map(|_| rng.gen::<f32>()).collect();
    let to_dist = |pref: &[f32]| -> Vec<f32> {
        let sum: f32 = pref.iter().map(|v| v.exp()).sum();
        pref.iter().map(|v| v.exp() / sum).collect()
    };
    let pos = to_dist(&pos_pref);
    let neg = to_dist(&neg_pref);
    let sample_word = |dist: &[f32], rng: &mut StdRng| -> usize {
        let mut u: f32 = rng.gen();
        for (w, &p) in dist.iter().enumerate() {
            if u < p {
                return w;
            }
            u -= p;
        }
        dist.len() - 1
    };
    let mut clients = Vec::with_capacity(cfg.num_clients);
    for _ in 0..cfg.num_clients {
        let label_prior: f32 = 0.2 + rng.gen::<f32>() * 0.6; // per-user skew
        let slang_mix: f32 = rng.gen::<f32>() * 0.3; // per-user noise words
        let n = cfg.per_client;
        let mut data = vec![0.0f32; n * cfg.vocab];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let y = usize::from(rng.gen::<f32>() < label_prior);
            labels.push(y);
            let dist = if y == 1 { &pos } else { &neg };
            for _ in 0..cfg.words_per_text {
                let w = if rng.gen::<f32>() < slang_mix {
                    rng.gen_range(0..cfg.vocab)
                } else {
                    sample_word(dist, &mut rng)
                };
                data[i * cfg.vocab + w] = 1.0;
            }
        }
        let x = Tensor::from_vec(vec![n, cfg.vocab], data);
        let all = ClientData {
            x,
            y: Target::Classes(labels),
        };
        clients.push(ClientSplit::from_fractions(&all, 0.6, 0.2));
    }
    FedDataset {
        clients,
        feature_shape: vec![cfg.vocab],
        num_classes: 2,
        name: "twitter-like".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn femnist_shapes_and_determinism() {
        let cfg = ImageConfig {
            num_clients: 4,
            per_client: 10,
            ..Default::default()
        };
        let a = femnist_like(&cfg);
        let b = femnist_like(&cfg);
        assert_eq!(a.num_clients(), 4);
        assert_eq!(a.feature_shape, vec![1, 8, 8]);
        assert_eq!(a.clients[0].train.x.data(), b.clients[0].train.x.data());
        assert_eq!(a.clients[2].train.len(), 7);
        assert_eq!(a.clients[2].val.len() + a.clients[2].test.len(), 3);
    }

    #[test]
    fn cifar_dirichlet_skews_labels() {
        let cfg = ImageConfig {
            num_clients: 8,
            per_client: 60,
            seed: 3,
            ..Default::default()
        };
        let iid = cifar_like(&cfg, None);
        let skew = cifar_like(&cfg, Some(0.1));
        let peak = |d: &FedDataset| -> f32 {
            let mut acc = 0.0;
            for c in &d.clients {
                let h = c.train.label_histogram(d.num_classes);
                let n: usize = h.iter().sum();
                let m = *h.iter().max().unwrap();
                acc += m as f32 / n.max(1) as f32;
            }
            acc / d.clients.len() as f32
        };
        assert!(
            peak(&skew) > peak(&iid) + 0.15,
            "skewed peak {} vs iid peak {}",
            peak(&skew),
            peak(&iid)
        );
    }

    #[test]
    fn biased_split_rare_labels_only_on_slow() {
        let cfg = ImageConfig {
            num_clients: 10,
            per_client: 40,
            ..Default::default()
        };
        let d = cifar_like_biased(&cfg, &[8, 9], 7);
        for c in 0..7 {
            let h = d.clients[c].train.label_histogram(10);
            assert_eq!(h[8] + h[9], 0, "fast client {c} has rare labels");
        }
        let slow_rare: usize = (7..10)
            .map(|c| {
                let h = d.clients[c].train.label_histogram(10);
                h[8] + h[9]
            })
            .sum();
        assert!(slow_rare > 0, "slow clients never drew rare labels");
    }

    #[test]
    fn twitter_binary_sparse() {
        let cfg = TwitterConfig {
            num_clients: 6,
            ..Default::default()
        };
        let d = twitter_like(&cfg);
        assert_eq!(d.num_classes, 2);
        assert_eq!(d.num_clients(), 6);
        let x = &d.clients[0].train.x;
        // bag-of-words entries are 0/1 and sparse
        assert!(x.data().iter().all(|&v| v == 0.0 || v == 1.0));
        let density = x.sum() / x.numel() as f32;
        assert!(density < 0.5, "unexpectedly dense: {density}");
    }

    #[test]
    fn learnable_by_linear_model() {
        // sanity: a centralized logistic regression should beat chance easily
        use fs_tensor::model::{logistic_regression, Model};
        use fs_tensor::optim::{Sgd, SgdConfig};
        let cfg = TwitterConfig {
            num_clients: 20,
            per_client: 20,
            seed: 5,
            ..Default::default()
        };
        let d = twitter_like(&cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = logistic_regression(d.input_dim(), 2, &mut rng);
        let mut opt = Sgd::new(SgdConfig::with_lr(0.5));
        for _ in 0..40 {
            for c in &d.clients {
                if c.train.is_empty() {
                    continue;
                }
                let (_, g) = m.loss_grad(
                    &c.train.x.reshape(&[c.train.len(), d.input_dim()]),
                    &c.train.y,
                );
                let mut p = m.get_params();
                opt.step(&mut p, &g, None);
                m.set_params(&p);
            }
        }
        let mut accs = Vec::new();
        for c in &d.clients {
            if c.test.is_empty() {
                continue;
            }
            let met = m.evaluate(&c.test.x.reshape(&[c.test.len(), d.input_dim()]), &c.test.y);
            accs.push((met.accuracy, met.n));
        }
        let total: usize = accs.iter().map(|(_, n)| n).sum();
        let acc: f32 = accs.iter().map(|(a, n)| a * *n as f32).sum::<f32>() / total as f32;
        assert!(acc > 0.6, "centralized accuracy too low: {acc}");
    }
}
