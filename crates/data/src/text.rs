//! Shakespeare-like next-character prediction (LEAF's other text benchmark).
//!
//! LEAF partitions Shakespeare by speaking role; each client learns
//! next-character prediction over its role's lines. We synthesize the same
//! structure: a global character-level bigram-ish language ("the play"),
//! per-client *style* variation (each role prefers certain characters, like
//! a character's idiosyncratic vocabulary), and sliding-window examples
//! `(context of `CONTEXT` chars, next char)` one-hot encoded for a dense
//! model.

use crate::dataset::{ClientData, ClientSplit, FedDataset};
use fs_tensor::loss::Target;
use fs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Context window length (characters of history per example).
pub const CONTEXT: usize = 4;

/// Configuration for the Shakespeare-like generator.
#[derive(Clone, Debug)]
pub struct ShakespeareConfig {
    /// Number of clients ("speaking roles").
    pub num_clients: usize,
    /// Alphabet size (distinct characters).
    pub alphabet: usize,
    /// Length of each role's text (characters).
    pub text_len: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for ShakespeareConfig {
    fn default() -> Self {
        Self {
            num_clients: 20,
            alphabet: 12,
            text_len: 120,
            seed: 29,
        }
    }
}

/// Generates the dataset: one client per role, each with sliding-window
/// next-character examples over its own text.
pub fn shakespeare_like(cfg: &ShakespeareConfig) -> FedDataset {
    assert!(cfg.alphabet >= 2 && cfg.text_len > CONTEXT + 2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let a = cfg.alphabet;
    // the shared "play": a global transition matrix with strong structure
    // (each character has a couple of likely successors)
    let mut global_next = vec![vec![0.0f64; a]; a];
    for (row, dist) in global_next.iter_mut().enumerate() {
        let succ1 = (row + 1) % a;
        let succ2 = (row * 3 + 1) % a;
        for (j, p) in dist.iter_mut().enumerate() {
            *p = if j == succ1 {
                0.45
            } else if j == succ2 {
                0.3
            } else {
                0.25 / (a - 2) as f64
            };
        }
    }
    let sample_from = |dist: &[f64], rng: &mut StdRng| -> usize {
        let mut u: f64 = rng.gen();
        for (i, &p) in dist.iter().enumerate() {
            if u < p {
                return i;
            }
            u -= p;
        }
        dist.len() - 1
    };
    let dim = CONTEXT * a;
    let mut clients = Vec::with_capacity(cfg.num_clients);
    for _ in 0..cfg.num_clients {
        // role style: a preferred character that gets extra probability mass
        let favourite = rng.gen_range(0..a);
        let style = 0.1 + rng.gen::<f64>() * 0.2;
        // generate the role's text
        let mut text = Vec::with_capacity(cfg.text_len);
        let mut cur = rng.gen_range(0..a);
        text.push(cur);
        for _ in 1..cfg.text_len {
            let next = if rng.gen::<f64>() < style {
                favourite
            } else {
                sample_from(&global_next[cur], &mut rng)
            };
            text.push(next);
            cur = next;
        }
        // sliding windows -> one-hot examples
        let n = cfg.text_len - CONTEXT;
        let mut xs = vec![0.0f32; n * dim];
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            for (k, &ch) in text[i..i + CONTEXT].iter().enumerate() {
                xs[i * dim + k * a + ch] = 1.0;
            }
            ys.push(text[i + CONTEXT]);
        }
        let all = ClientData {
            x: Tensor::from_vec(vec![n, dim], xs),
            y: Target::Classes(ys),
        };
        clients.push(ClientSplit::from_fractions(&all, 0.7, 0.15));
    }
    FedDataset {
        clients,
        feature_shape: vec![dim],
        num_classes: a,
        name: "shakespeare-like".to_string(),
    }
}

/// CelebA-like: binary attribute classification with person-specific style
/// (LEAF partitions CelebA by celebrity). Structurally: the femnist-like
/// writer mechanism with two classes and a stronger per-client style.
pub fn celeba_like(num_clients: usize, per_client: usize, img: usize, seed: u64) -> FedDataset {
    let mut d = crate::synth::femnist_like(&crate::synth::ImageConfig {
        num_clients,
        num_classes: 2,
        img,
        per_client,
        noise: 0.5,
        size_skew: 0.3,
        seed,
    });
    d.name = "celeba-like".to_string();
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = ShakespeareConfig::default();
        let a = shakespeare_like(&cfg);
        let b = shakespeare_like(&cfg);
        assert_eq!(a.num_clients(), 20);
        assert_eq!(a.num_classes, 12);
        assert_eq!(a.input_dim(), CONTEXT * 12);
        assert_eq!(a.clients[3].train.x.data(), b.clients[3].train.x.data());
        // one-hot rows: exactly CONTEXT ones per example
        let x = &a.clients[0].train.x;
        for r in 0..x.rows() {
            let s: f32 = x.row(r).iter().sum();
            assert_eq!(s, CONTEXT as f32);
        }
    }

    #[test]
    fn next_char_is_learnable() {
        use fs_tensor::model::{logistic_regression, Model};
        let cfg = ShakespeareConfig {
            num_clients: 8,
            text_len: 400,
            ..Default::default()
        };
        let d = shakespeare_like(&cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = logistic_regression(d.input_dim(), d.num_classes, &mut rng);
        // centralized training over all clients
        for _ in 0..60 {
            for c in &d.clients {
                let (_, g) = m.loss_grad(&c.train.x, &c.train.y);
                let mut p = m.get_params();
                p.add_scaled(-0.5, &g);
                m.set_params(&p);
            }
        }
        let mut accs = Vec::new();
        for c in &d.clients {
            if !c.test.is_empty() {
                accs.push(m.evaluate(&c.test.x, &c.test.y).accuracy);
            }
        }
        let acc = accs.iter().sum::<f32>() / accs.len() as f32;
        // chance is 1/12 ≈ 0.083; structured transitions must be learnable
        assert!(acc > 0.3, "next-char accuracy too low: {acc}");
    }

    #[test]
    fn celeba_like_is_binary_with_size_skew() {
        let d = celeba_like(12, 30, 8, 5);
        assert_eq!(d.num_classes, 2);
        assert_eq!(d.num_clients(), 12);
        let sizes: Vec<usize> = d.clients.iter().map(|c| c.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(
            max > min,
            "size skew must produce heterogeneous sizes: {sizes:?}"
        );
    }
}
