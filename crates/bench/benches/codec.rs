//! Criterion: message-translation (wire codec) throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fs_net::wire::{decode_params, encode_params};
use fs_tensor::{ParamMap, Tensor};

fn make_params(numel: usize) -> ParamMap {
    let mut p = ParamMap::new();
    p.insert("conv1.weight", Tensor::full(&[numel / 4], 0.5));
    p.insert("conv1.bias", Tensor::full(&[numel / 4], -0.5));
    p.insert("fc.weight", Tensor::full(&[numel / 4], 1.5));
    p.insert("fc.bias", Tensor::full(&[numel / 4], 0.25));
    p
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for numel in [1_000usize, 10_000, 100_000] {
        let params = make_params(numel);
        let bytes = encode_params(&params);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", numel), &params, |b, p| {
            b.iter(|| encode_params(std::hint::black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("decode", numel), &bytes, |b, raw| {
            b.iter(|| decode_params(std::hint::black_box(raw)).expect("valid"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
