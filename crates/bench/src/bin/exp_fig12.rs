//! **Figure 12** — client-wise test accuracy of personalized FL algorithms
//! vs vanilla FedAvg on the FEMNIST-like dataset (writer feature skew).
//!
//! Paper's shape: FedBN / FedEM / pFedMe / Ditto all raise both the average
//! accuracy and the bottom-quantile accuracy over FedAvg, and shrink the
//! standard deviation σ across clients.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_fig12
//! ```

use fs_bench::output::{render_table, write_json};
use fs_core::config::FlConfig;
use fs_core::course::CourseBuilder;
use fs_core::trainer::{share_all, TrainConfig};
use fs_data::synth::{femnist_like, ImageConfig};
use fs_data::FedDataset;
use fs_personalize::fedbn::fedbn_share_filter;
use fs_personalize::{DittoTrainer, FedEmTrainer, MixtureModel, PFedMeTrainer};
use fs_tensor::model::{mlp_bn, Model};
use fs_tensor::optim::SgdConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct MethodResult {
    method: String,
    client_accuracies: Vec<f32>,
    mean: f32,
    std: f32,
    q10: f32,
}

fn dataset() -> FedDataset {
    femnist_like(&ImageConfig {
        num_clients: 30,
        num_classes: 10,
        img: 8,
        per_client: 60,
        noise: 0.45,
        size_skew: 0.0,
        seed: 11,
    })
    .flattened()
}

fn base_cfg() -> FlConfig {
    FlConfig {
        total_rounds: 40,
        concurrency: 30,
        local_steps: 6,
        batch_size: 16,
        sgd: SgdConfig::with_lr(0.15),
        eval_every: 5,
        seed: 11,
        ..Default::default()
    }
}

fn summarize(method: &str, accs: Vec<f32>) -> MethodResult {
    let n = accs.len() as f32;
    let mean = accs.iter().sum::<f32>() / n;
    let var = accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n;
    let mut sorted = accs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q10 = sorted[(sorted.len() as f32 * 0.1) as usize];
    MethodResult {
        method: method.to_string(),
        client_accuracies: accs,
        mean,
        std: var.sqrt(),
        q10,
    }
}

fn client_accs(runner: &fs_core::StandaloneRunner) -> Vec<f32> {
    (1..=runner.clients.len() as u32)
        .filter_map(|c| runner.server.state.client_reports.get(&c))
        .map(|m| m.accuracy)
        .collect()
}

fn main() {
    let data = dataset();
    let dim = data.input_dim();
    let hidden = 48;
    let classes = data.num_classes;
    let mlp_factory = move |rng: &mut StdRng| -> Box<dyn Model> {
        Box::new(mlp_bn(&[dim, hidden, classes], rng))
    };
    let mut results = Vec::new();

    // FedAvg: everything shared, clients evaluate the global model
    let mut runner = CourseBuilder::new(data.clone(), Box::new(mlp_factory), base_cfg()).build();
    runner.run();
    results.push(summarize("FedAvg", client_accs(&runner)));

    // FedBN: bn.* stays local
    let mut runner = CourseBuilder::new(data.clone(), Box::new(mlp_factory), base_cfg())
        .share_filter(fedbn_share_filter())
        .build();
    runner.run();
    results.push(summarize("FedBN", client_accs(&runner)));

    // Ditto: personal model with proximal pull
    let mut runner = CourseBuilder::new(data.clone(), Box::new(mlp_factory), base_cfg())
        .trainer_factory(Box::new(|i, model, split, cfg| {
            Box::new(DittoTrainer::new(
                model,
                split,
                TrainConfig {
                    local_steps: cfg.local_steps,
                    batch_size: cfg.batch_size,
                    sgd: cfg.sgd,
                },
                0.5,
                share_all(),
                cfg.seed ^ (i as u64 + 1),
            ))
        }))
        .build();
    runner.run();
    results.push(summarize("Ditto", client_accs(&runner)));

    // pFedMe: Moreau-envelope personalization
    let mut runner = CourseBuilder::new(data.clone(), Box::new(mlp_factory), base_cfg())
        .trainer_factory(Box::new(|i, model, split, cfg| {
            Box::new(PFedMeTrainer::new(
                model,
                split,
                TrainConfig {
                    local_steps: 3,
                    batch_size: cfg.batch_size,
                    sgd: cfg.sgd,
                },
                1.0,
                1.0,
                6,
                share_all(),
                cfg.seed ^ (i as u64 + 1),
            ))
        }))
        .build();
    runner.run();
    results.push(summarize("pFedMe", client_accs(&runner)));

    // FedEM: mixture of two shared components, private mixture weights
    let mixture_factory = move |rng: &mut StdRng| -> Box<dyn Model> {
        let comps: Vec<Box<dyn Model>> = (0..2)
            .map(|_| Box::new(mlp_bn(&[dim, hidden, classes], rng)) as Box<dyn Model>)
            .collect();
        Box::new(MixtureModel::new(comps))
    };
    let mut runner = CourseBuilder::new(data.clone(), Box::new(mixture_factory), base_cfg())
        .trainer_factory(Box::new(move |i, model, split, cfg| {
            // rebuild the mixture from the template's parameters
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 999);
            let comps: Vec<Box<dyn Model>> = (0..2)
                .map(|_| Box::new(mlp_bn(&[dim, hidden, classes], &mut rng)) as Box<dyn Model>)
                .collect();
            let mut mixture = MixtureModel::new(comps);
            mixture.set_params(&model.get_params());
            Box::new(FedEmTrainer::new(
                mixture,
                split,
                TrainConfig {
                    local_steps: cfg.local_steps,
                    batch_size: cfg.batch_size,
                    // responsibilities scale gradients by gamma <= 1, so the
                    // mixture needs a higher raw learning rate
                    sgd: SgdConfig {
                        lr: cfg.sgd.lr * 2.0,
                        ..cfg.sgd
                    },
                },
                share_all(),
                cfg.seed ^ (i as u64 + 1),
            ))
        }))
        .build();
    runner.run();
    results.push(summarize("FedEM", client_accs(&runner)));

    println!("\nFigure 12 — client-wise test accuracy (FEMNIST-like)\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{:.3}", r.mean),
                format!("{:.3}", r.q10),
                format!("{:.3}", r.std),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["method", "mean acc", "q10 acc", "sigma"], &rows)
    );
    let path = write_json("fig12", &results).expect("write results");
    println!("wrote {path}");
}
