//! Per-crate policy tiers: which lints apply where, and at what severity.
//!
//! The grading is deliberately asymmetric. The crates on the simulator's
//! charged paths and the distributed runtime carry the repo's determinism
//! and liveness guarantees, so they get the strictest grades; library crates
//! get warnings; the experiment binaries are CLI tools whose error story
//! *is* panicking, so panic-safety lints don't apply there at all.

use crate::diag::{Code, Severity};

/// Policy tier a file is analyzed under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// The runtime core: `fs-net`, `fs-core`, `fs-sim`, `fs-exec`,
    /// `fs-scale`. Panics here kill courses; nondeterminism here breaks
    /// bit-identical replay.
    Runtime,
    /// Everything algorithmic: tensors, data, codecs, scenario crates.
    Library,
    /// Experiment binaries, examples, and the facade crate.
    Bench,
}

/// Maps a workspace crate (by package name) to its tier.
pub fn tier_for_crate(name: &str) -> Tier {
    match name {
        "fs-net" | "fs-core" | "fs-sim" | "fs-exec" | "fs-scale" => Tier::Runtime,
        "fs-bench" | "fedscope" => Tier::Bench,
        _ => Tier::Library,
    }
}

/// Whether a crate's code runs on sim-charged paths, where wall-clock reads
/// would diverge virtual time from reality (`FSA002`).
pub fn charged_crate(name: &str) -> bool {
    matches!(name, "fs-core" | "fs-sim" | "fs-exec" | "fs-scale")
}

/// Grades a candidate finding: `None` means the lint does not apply in this
/// context, `Some(sev)` is the severity it carries.
pub fn grade(code: Code, tier: Tier, charged: bool, in_test: bool) -> Option<Severity> {
    match code {
        // Ambient RNG is wrong everywhere: in tests it makes coverage
        // flaky (still a Warning), elsewhere it breaks seeded replay.
        Code::AmbientRng => Some(if in_test {
            Severity::Warning
        } else {
            Severity::Error
        }),
        // Wall-clock only matters where time is virtual; tests measuring
        // real deadlines are fine.
        Code::WallClock => (charged && !in_test).then_some(Severity::Error),
        Code::UnorderedContainer => {
            (tier == Tier::Runtime && !in_test).then_some(Severity::Warning)
        }
        Code::FloatReduce => (tier == Tier::Runtime && !in_test).then_some(Severity::Warning),
        Code::Unwrap => match (tier, in_test) {
            (_, true) | (Tier::Bench, _) => None,
            (Tier::Runtime, false) => Some(Severity::Error),
            (Tier::Library, false) => Some(Severity::Warning),
        },
        Code::Expect => match (tier, in_test) {
            (_, true) | (Tier::Bench, _) => None,
            (Tier::Runtime, false) => Some(Severity::Warning),
            (Tier::Library, false) => Some(Severity::Note),
        },
        Code::PanicMacro => match (tier, in_test) {
            (_, true) | (Tier::Bench, _) => None,
            (Tier::Runtime, false) => Some(Severity::Warning),
            (Tier::Library, false) => Some(Severity::Note),
        },
        Code::SliceIndex => (tier == Tier::Runtime && !in_test).then_some(Severity::Note),
        Code::NestedLock | Code::GuardAcrossChannel => (!in_test).then_some(Severity::Warning),
        // Pragma hygiene always gates: a stale suppression is debt.
        Code::PragmaMissingReason | Code::UnusedPragma | Code::UnknownPragmaCode => {
            Some(Severity::Warning)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_cover_the_workspace() {
        assert_eq!(tier_for_crate("fs-net"), Tier::Runtime);
        assert_eq!(tier_for_crate("fs-scale"), Tier::Runtime);
        assert_eq!(tier_for_crate("fs-tensor"), Tier::Library);
        assert_eq!(tier_for_crate("fs-analyze"), Tier::Library);
        assert_eq!(tier_for_crate("fs-bench"), Tier::Bench);
        assert_eq!(tier_for_crate("fedscope"), Tier::Bench);
        assert!(charged_crate("fs-sim"));
        assert!(
            !charged_crate("fs-net"),
            "sockets legitimately read wall time"
        );
    }

    #[test]
    fn grading_is_tier_asymmetric() {
        assert_eq!(
            grade(Code::Unwrap, Tier::Runtime, false, false),
            Some(Severity::Error)
        );
        assert_eq!(
            grade(Code::Unwrap, Tier::Library, false, false),
            Some(Severity::Warning)
        );
        assert_eq!(grade(Code::Unwrap, Tier::Bench, false, false), None);
        assert_eq!(grade(Code::Unwrap, Tier::Runtime, false, true), None);
        assert_eq!(
            grade(Code::AmbientRng, Tier::Bench, false, false),
            Some(Severity::Error),
            "exp binaries must stay seeded too"
        );
        assert_eq!(
            grade(Code::AmbientRng, Tier::Runtime, false, true),
            Some(Severity::Warning)
        );
        assert_eq!(grade(Code::WallClock, Tier::Runtime, false, false), None);
        assert_eq!(
            grade(Code::WallClock, Tier::Runtime, true, false),
            Some(Severity::Error)
        );
    }
}
