//! Cross-backend FL via message translation (§3.5), plus the distributed
//! runner: the same worker code on real threads over the wire-encoded bus.
//!
//! ```text
//! cargo run --release --example cross_backend
//! ```

use fedscope::core::config::FlConfig;
use fedscope::core::course::CourseBuilder;
use fedscope::core::distributed::run_distributed;
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::net::backend::{Backend, ColMajorF64Store, RowMajorF32Store};
use fedscope::tensor::model::{logistic_regression, Model};
use fedscope::tensor::optim::SgdConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    // --- message translation between two different native layouts --------
    let mut rng = StdRng::seed_from_u64(1);
    let model = logistic_regression(16, 3, &mut rng);
    let torch_like = RowMajorF32Store::new(model.get_params());
    println!("participant A backend: {}", torch_like.name());

    // A encodes into the neutral wire format...
    let wire = torch_like.encode();
    println!("wire bytes: {}", wire.len());

    // ...and B (column-major f64 native layout) decodes into its own world
    let mut tf_like = ColMajorF64Store::new();
    tf_like.decode(&wire).expect("decode");
    println!("participant B backend: {}", tf_like.name());
    let (_, native) = tf_like.native("fc.weight").expect("entry");
    println!(
        "B's native column-major copy holds {} f64 values",
        native.len()
    );

    // round-trip equality proves translation is lossless for f32 values
    let mut back = RowMajorF32Store::default();
    back.decode(&tf_like.encode()).expect("decode");
    assert_eq!(torch_like.params(), back.params());
    println!("A -> wire -> B -> wire -> A round-trip: lossless\n");

    // --- the distributed runner: same workers, real threads --------------
    let data = twitter_like(&TwitterConfig {
        num_clients: 8,
        per_client: 12,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 5,
        concurrency: 4,
        sgd: SgdConfig::with_lr(0.3),
        seed: 5,
        ..Default::default()
    };
    let runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();
    // split the assembled course into its participants and run distributed
    let server = runner.server;
    let clients: Vec<_> = runner.clients.into_values().collect();
    let server =
        run_distributed(server, clients, Duration::from_secs(30)).expect("distributed run");
    println!(
        "distributed course finished: {} rounds, {} client reports, reason: {}",
        server.state.round,
        server.state.client_reports.len(),
        server.state.finish_reason.unwrap_or_default()
    );
}
