//! **fs-exec** — a deterministic parallel execution engine for the
//! standalone simulator.
//!
//! The standalone runner trains each round's sampled clients between two
//! dispatch barriers: client handlers are independent of one another until
//! the server reduces their replies. That independence is what this crate
//! exploits: a fixed-size [`WorkerPool`] executes client jobs concurrently
//! while the caller *adopts results in a fixed order*, so every observable
//! artifact (reports, RNG streams, virtual-time accounting) stays
//! bit-identical to serial execution.
//!
//! Design constraints, in order of priority:
//!
//! 1. **Determinism first.** The pool never decides ordering — callers
//!    submit jobs, keep the [`JobHandle`]s, and join them in the order the
//!    serial simulator would have produced them. [`WorkerPool::run_ordered`]
//!    packages the common fan-out/ordered-collect shape.
//! 2. **Serial fallback is the identity.** With `threads <= 1` the pool
//!    spawns no threads and runs each job inline at `spawn` time, making the
//!    parallel code path structurally identical to the serial one. A
//!    `parallelism = 1` run therefore exercises the exact pre-pool code.
//! 3. **Panics propagate.** A panicking job re-raises its payload at
//!    `join()` on the submitting thread, preserving `should_panic` test
//!    semantics and the runner's crash diagnostics.
//!
//! Built on the vendored `crossbeam` channel (an MPMC queue): workers loop
//! on `recv()` and exit when the pool drops the sender side.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread::JoinHandle;

/// A unit of work shipped to a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Handle to one submitted job's result.
///
/// `join()` blocks until the job finishes and returns its output; if the
/// job panicked, the panic is re-raised here, on the joining thread.
/// `try_join()` is the non-panicking variant: it reports both failure modes
/// as a typed [`JoinError`] so runners can degrade gracefully (e.g. mark a
/// client failed) instead of tearing down the whole course.
pub struct JobHandle<T> {
    rx: mpsc::Receiver<std::thread::Result<T>>,
}

/// Why a job produced no result.
pub enum JoinError {
    /// The job panicked; the payload is the panic value, suitable for
    /// re-raising via [`std::panic::resume_unwind`].
    Panicked(Box<dyn std::any::Any + Send + 'static>),
    /// The worker dropped the job without reporting a result — the pool
    /// died between accepting the job and running it. Indicates a pool bug.
    Lost,
}

impl fmt::Debug for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Panicked(p) => {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".into());
                write!(f, "Panicked({msg:?})")
            }
            JoinError::Lost => write!(f, "Lost"),
        }
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Panicked(_) => write!(f, "job panicked"),
            JoinError::Lost => write!(f, "worker dropped the job without reporting"),
        }
    }
}

impl std::error::Error for JoinError {}

impl<T> JobHandle<T> {
    /// Waits for the job; a panicking or lost job comes back as a typed
    /// error instead of unwinding the joining thread.
    pub fn try_join(self) -> Result<T, JoinError> {
        match self.rx.recv() {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(payload)) => Err(JoinError::Panicked(payload)),
            // The result sender is dropped only after a send or if the
            // worker died between catch_unwind and send.
            Err(_) => Err(JoinError::Lost),
        }
    }

    /// Waits for the job and returns its result, re-raising its panic.
    pub fn join(self) -> T {
        match self.try_join() {
            Ok(value) => value,
            Err(JoinError::Panicked(payload)) => resume_unwind(payload),
            // fsa::allow(FSA022, a lost job means the pool itself is broken; there is no caller-side recovery)
            Err(JoinError::Lost) => panic!("fs-exec: worker dropped a job without reporting"),
        }
    }
}

/// A scoped pool of OS worker threads executing submitted jobs.
///
/// Dropping the pool closes the job queue and joins every worker, so no job
/// outlives the pool (poor man's scoped threads — jobs still require
/// `'static` captures, which the simulator satisfies by *moving* client
/// state into jobs and back out through [`JobHandle::join`]).
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers. `threads <= 1` creates no
    /// threads at all: jobs run inline at `spawn` time (serial identity).
    /// `threads == 0` is resolved via [`std::thread::available_parallelism`].
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        if threads <= 1 {
            return Self {
                tx: None,
                workers: Vec::new(),
                threads: 1,
            };
        }
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("fs-exec-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    // fsa::allow(FSA021, OS thread spawn failing at pool construction is unrecoverable resource exhaustion)
                    .expect("fs-exec: spawn worker thread")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            threads,
        }
    }

    /// Number of workers (1 means inline/serial execution).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when jobs run inline on the submitting thread.
    pub fn is_inline(&self) -> bool {
        self.tx.is_none()
    }

    /// Submits a job and returns a handle to its eventual result.
    ///
    /// In inline mode the job runs right here, before `spawn` returns —
    /// exactly the serial execution order.
    pub fn spawn<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let job = move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            // receiver gone means the caller dropped the handle; the job's
            // effects were side-effect-free by contract, so ignore
            let _ = tx.send(result);
        };
        match &self.tx {
            Some(pool_tx) => {
                if pool_tx.send(Box::new(job)).is_err() {
                    // fsa::allow(FSA022, the pool owns both channel ends; a send failure violates the type's own invariant)
                    unreachable!("fs-exec: pool workers alive while pool exists");
                }
            }
            None => job(),
        }
        JobHandle { rx }
    }

    /// Fans `items` out to the pool and returns outputs in input order —
    /// the deterministic reduce: result `i` is item `i`'s output no matter
    /// which worker ran it or when it finished.
    pub fn run_ordered<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + Clone + 'static,
    {
        let handles: Vec<JobHandle<T>> = items
            .into_iter()
            .map(|item| {
                let f = f.clone();
                self.spawn(move || f(item))
            })
            .collect();
        handles.into_iter().map(JobHandle::join).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // closing the channel makes every worker's recv() fail → clean exit
        self.tx.take();
        for w in self.workers.drain(..) {
            // a worker panicking outside a job is a pool bug; surface it
            if let Err(payload) = w.join() {
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn run_ordered_preserves_input_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_ordered((0..64u64).collect(), |i| i * i);
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn inline_mode_runs_jobs_at_spawn_time() {
        let pool = WorkerPool::new(1);
        assert!(pool.is_inline());
        assert_eq!(pool.threads(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let handle = pool.spawn(move || r.fetch_add(1, Ordering::SeqCst));
        // job already executed, before join
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        handle.join();
    }

    #[test]
    fn all_jobs_complete_across_workers() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..100)
            .map(|_| {
                let c = counter.clone();
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn try_join_reports_panics_as_typed_errors() {
        let pool = WorkerPool::new(2);
        let ok = pool.spawn(|| 7u32);
        let bad = pool.spawn(|| -> u32 { panic!("job exploded") });
        assert_eq!(ok.try_join().unwrap(), 7);
        let err = bad.try_join().unwrap_err();
        assert!(matches!(err, JoinError::Panicked(_)));
        let rendered = format!("{err:?}");
        assert!(rendered.contains("job exploded"), "got {rendered}");
        assert_eq!(err.to_string(), "job panicked");
        // the pool survives: later jobs still run and join cleanly
        assert_eq!(pool.spawn(|| 1 + 1).try_join().unwrap(), 2);
    }

    #[test]
    fn join_propagates_panics() {
        let pool = WorkerPool::new(2);
        let ok = pool.spawn(|| 7u32);
        let bad = pool.spawn(|| -> u32 { panic!("job exploded") });
        assert_eq!(ok.join(), 7);
        let err = catch_unwind(AssertUnwindSafe(|| bad.join())).unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job exploded"), "got panic payload {msg:?}");
        // pool survives a panicking job
        assert_eq!(pool.spawn(|| 1 + 1).join(), 2);
    }

    #[test]
    fn inline_join_propagates_panics() {
        let pool = WorkerPool::new(1);
        let bad = pool.spawn(|| -> u32 { panic!("inline boom") });
        assert!(catch_unwind(AssertUnwindSafe(|| bad.join())).is_err());
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        let out = pool.run_ordered(vec![1, 2, 3], |i| i * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..10 {
                let c = counter.clone();
                // fire-and-forget: handles dropped, results discarded
                let _ = pool.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop waits for the queue to drain
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
