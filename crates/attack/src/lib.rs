//! `fs-attack` — attack simulation as a participant plug-in (§4.2).
//!
//! FederatedScope lets users flip selected participants into *malicious
//! clients* to verify the availability and privacy-protection strength of an
//! FL course. This crate reproduces that component:
//!
//! **Privacy attacks**
//! * [`dlg`] — gradient inversion (DLG/iDLG): reconstructs training inputs
//!   and infers labels from a client's shared gradients. For the linear
//!   models used in the paper's Figure 13 experiment the inversion is exact
//!   (closed form); DP noise on the update destroys it.
//! * [`membership`] — loss-threshold membership inference.
//! * [`property`] — property inference: a meta-classifier over gradient
//!   features predicts a sensitive property of a client's dataset.
//!
//! **Performance attacks (backdoors)**
//! * [`backdoor`] — data poisoning: BadNets-style pixel triggers, label
//!   flipping, edge-case (tail) poisoning, and DBA's distributed trigger
//!   split across colluding clients.
//! * [`model_poison`] — model-poisoning: model replacement (update scaling)
//!   and Neurotoxin-style masking to rarely-updated coordinates.
//! * [`malicious`] — the participant plug-in: a trainer wrapper that applies
//!   any of the above during an FL course (the `MaliciousClient` of the
//!   paper's Figure 7).

pub mod backdoor;
pub mod dlg;
pub mod malicious;
pub mod membership;
pub mod model_poison;
pub mod property;
