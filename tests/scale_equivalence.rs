//! Equivalence suite for the fs-scale runner: the lazy, heap-indexed
//! million-client core must produce a **bit-identical** [`CourseReport`] to
//! the legacy standalone runner on every overlapping scale — same strategy,
//! same codec, same fleet, same seed. The comparison goes beyond the report:
//! the fs-monitor streams (counters, round records, span sequences) must
//! match event-for-event, and the monitor's byte counters must reconcile
//! with the sim-charged totals in both runners.

use fedscope::core::config::{
    BroadcastManner, CodecSpec, CompressionConfig, FlConfig, SamplerKind,
};
use fedscope::core::course::CourseBuilder;
use fedscope::core::runner::CourseReport;
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::data::FedDataset;
use fedscope::monitor::{counters, MonitorHandle, RecordingMonitor};
use fedscope::scale::ScaleCourseBuilder;
use fedscope::sim::FleetConfig;
use fedscope::tensor::model::logistic_regression;
use fedscope::tensor::optim::SgdConfig;
use proptest::prelude::*;
use std::sync::{Arc, Mutex, PoisonError};

/// Deterministic dataset: both runners regenerate it from the same config,
/// so neither sees the other's copy.
fn dataset(num_clients: usize, seed: u64) -> FedDataset {
    twitter_like(&TwitterConfig {
        num_clients,
        per_client: 6,
        vocab: 60,
        seed,
        ..Default::default()
    })
}

fn extract(monitor: Arc<Mutex<RecordingMonitor>>) -> RecordingMonitor {
    Arc::try_unwrap(monitor)
        .map_err(|_| "runner kept a monitor handle")
        .unwrap()
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
}

fn run_legacy(
    num_clients: usize,
    data_seed: u64,
    cfg: FlConfig,
    fleet_cfg: Option<FleetConfig>,
) -> (CourseReport, RecordingMonitor) {
    let data = dataset(num_clients, data_seed);
    let dim = data.input_dim();
    let monitor = Arc::new(Mutex::new(RecordingMonitor::new()));
    let mut builder = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    );
    if let Some(fc) = fleet_cfg {
        builder = builder.fleet_config(fc);
    }
    let mut runner = builder
        .build()
        .with_monitor(MonitorHandle::from_shared(monitor.clone()));
    let report = runner.run();
    drop(runner);
    (report, extract(monitor))
}

fn run_scale(
    num_clients: usize,
    data_seed: u64,
    cfg: FlConfig,
    fleet_cfg: Option<FleetConfig>,
) -> (CourseReport, RecordingMonitor) {
    let data = Arc::new(dataset(num_clients, data_seed));
    let dim = data.input_dim();
    let monitor = Arc::new(Mutex::new(RecordingMonitor::new()));
    let mut builder = ScaleCourseBuilder::from_dataset(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    );
    if let Some(fc) = fleet_cfg {
        builder = builder.fleet_config(fc);
    }
    let mut runner = builder
        .build()
        .with_monitor(MonitorHandle::from_shared(monitor.clone()));
    let report = runner.run();
    drop(runner);
    (report, extract(monitor))
}

/// Runs one (config, fleet) cell through both runners and asserts the full
/// equivalence contract: report, counters, round records, span sequence, and
/// byte-counter reconciliation against the sim-charged totals.
fn assert_equivalent(
    label: &str,
    num_clients: usize,
    cfg: FlConfig,
    fleet_cfg: Option<FleetConfig>,
) {
    let (legacy_report, legacy_mon) = run_legacy(num_clients, 21, cfg.clone(), fleet_cfg.clone());
    let (scale_report, scale_mon) = run_scale(num_clients, 21, cfg, fleet_cfg);

    assert_eq!(
        legacy_report, scale_report,
        "{label}: CourseReport diverged at {num_clients} clients"
    );
    assert_eq!(
        legacy_mon.counters(),
        scale_mon.counters(),
        "{label}: monitor counters diverged at {num_clients} clients"
    );
    assert_eq!(
        legacy_mon.rounds(),
        scale_mon.rounds(),
        "{label}: round records diverged at {num_clients} clients"
    );
    assert_eq!(
        legacy_mon.spans().len(),
        scale_mon.spans().len(),
        "{label}: span counts diverged at {num_clients} clients"
    );
    assert_eq!(
        legacy_mon.spans(),
        scale_mon.spans(),
        "{label}: span sequences diverged at {num_clients} clients"
    );

    // byte counters reconcile with the sim-charged totals in *both* runners
    for (who, report, mon) in [
        ("legacy", &legacy_report, &legacy_mon),
        ("scale", &scale_report, &scale_mon),
    ] {
        assert_eq!(
            mon.counter(counters::UPLOADED_BYTES),
            report.uploaded_bytes,
            "{label}/{who}: uploaded bytes do not reconcile"
        );
        assert_eq!(
            mon.counter(counters::DOWNLOADED_BYTES),
            report.downloaded_bytes,
            "{label}/{who}: downloaded bytes do not reconcile"
        );
    }
    scale_mon.validate_nesting().unwrap();
}

fn base_cfg(rounds: u64) -> FlConfig {
    FlConfig {
        total_rounds: rounds,
        concurrency: 10,
        local_steps: 4,
        batch_size: 4,
        sgd: SgdConfig::with_lr(0.3),
        seed: 11,
        ..Default::default()
    }
}

/// The strategy axis of the grid: one synchronous and two asynchronous
/// aggregation regimes, exercising both broadcast manners and all three
/// sampler kinds.
fn strategy_grid() -> Vec<(&'static str, FlConfig)> {
    vec![
        ("sync_vanilla", base_cfg(4).sync_vanilla()),
        (
            "async_goal",
            base_cfg(6).async_goal(
                5,
                BroadcastManner::AfterReceiving,
                SamplerKind::Responsiveness,
            ),
        ),
        (
            "async_time",
            base_cfg(6).async_time(
                60.0,
                2,
                BroadcastManner::AfterAggregating,
                SamplerKind::Group,
            ),
        ),
    ]
}

/// The codec axis of the grid: no compression, 8-bit quantization, top-k
/// with delta encoding on the uplink, and a downlink codec.
fn codec_grid() -> Vec<(&'static str, CompressionConfig)> {
    vec![
        ("plain", CompressionConfig::default()),
        (
            "quant8",
            CompressionConfig {
                upload: Some(CodecSpec::UniformQuant { bits: 8 }),
                upload_delta: false,
                download: None,
            },
        ),
        (
            "topk_delta",
            CompressionConfig {
                upload: Some(CodecSpec::TopK { ratio: 0.25 }),
                upload_delta: true,
                download: None,
            },
        ),
        (
            "downlink",
            CompressionConfig {
                upload: Some(CodecSpec::Identity),
                upload_delta: false,
                download: Some(CodecSpec::UniformQuant { bits: 8 }),
            },
        ),
    ]
}

#[test]
fn strategy_codec_grid_bit_identical_at_100_clients() {
    for (sname, strat_cfg) in strategy_grid() {
        for (cname, compression) in codec_grid() {
            let cfg = FlConfig {
                compression,
                ..strat_cfg.clone()
            };
            assert_equivalent(&format!("{sname}/{cname}"), 100, cfg, None);
        }
    }
}

#[test]
fn strategy_grid_bit_identical_at_1000_clients() {
    // the full codec axis is covered at 100 clients; at 1,000 the point is
    // that laziness changes nothing, so one codec per strategy suffices
    let codecs = codec_grid();
    for (i, (sname, strat_cfg)) in strategy_grid().into_iter().enumerate() {
        let (cname, compression) = &codecs[i % codecs.len()];
        let cfg = FlConfig {
            concurrency: 25,
            compression: *compression,
            ..strat_cfg
        };
        assert_equivalent(&format!("{sname}/{cname}@1000"), 1000, cfg, None);
    }
}

#[test]
fn crash_faults_replay_identically() {
    // a crashing fleet exercises the crash-RNG draw order, which is the most
    // fragile part of the determinism contract: one missed or extra draw
    // desynchronizes every later delivery
    let cfg = base_cfg(6).async_time(
        60.0,
        2,
        BroadcastManner::AfterReceiving,
        SamplerKind::Uniform,
    );
    let fleet_cfg = FleetConfig {
        num_clients: 100,
        crash_prob: 0.15,
        seed: cfg.seed ^ 0xf1ee,
        ..Default::default()
    };
    let (report, _) = run_scale(100, 21, cfg.clone(), Some(fleet_cfg.clone()));
    assert!(
        report.crashed_deliveries > 0,
        "crash cell is vacuous: no deliveries crashed"
    );
    assert_equivalent("crash/plain", 100, cfg, Some(fleet_cfg));
}

proptest! {
    /// Property: for any seed and sampler kind, the two runners agree
    /// bit-for-bit. Small course so the case count stays cheap; the grids
    /// above cover the 100/1,000-client scales.
    #[test]
    fn any_sampler_seed_is_equivalent(
        seed in 0u64..1_000,
        sampler_ix in 0usize..3,
        goal in 2usize..5,
    ) {
        let sampler = [
            SamplerKind::Uniform,
            SamplerKind::Responsiveness,
            SamplerKind::Group,
        ][sampler_ix];
        let cfg = FlConfig {
            total_rounds: 3,
            concurrency: 6,
            local_steps: 2,
            batch_size: 4,
            sgd: SgdConfig::with_lr(0.3),
            seed,
            ..Default::default()
        }
        .async_goal(goal, BroadcastManner::AfterAggregating, sampler);
        let (legacy_report, legacy_mon) = run_legacy(20, seed ^ 0x5eed, cfg.clone(), None);
        let (scale_report, scale_mon) = run_scale(20, seed ^ 0x5eed, cfg, None);
        prop_assert_eq!(&legacy_report, &scale_report);
        prop_assert_eq!(legacy_mon.counters(), scale_mon.counters());
        prop_assert_eq!(legacy_mon.spans(), scale_mon.spans());
    }
}
