//! Minimal in-repo stand-in for the `criterion` crate.
//!
//! Provides the benchmark-definition API the workspace's benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`Throughput`], [`criterion_group!`]/
//! [`criterion_main!`]) with a straightforward measurement loop: calibrate an
//! iteration count to a ~5 ms sample, take `sample_size` samples, and report
//! the median time per iteration (plus derived throughput) on stdout. No
//! statistical analysis, HTML reports, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration; turns median times into rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical items handled per iteration.
    Elements(u64),
}

/// A benchmark name with a parameter, rendered as `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self { label: format!("{}/{}", name.into(), param) }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(param: impl Display) -> Self {
        Self { label: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { label: name.to_owned() }
    }
}

/// Benchmark registry and configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(name, sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the samples per benchmark for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares how much data one iteration processes.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // calibration: grow the iteration count until one sample costs ~5 ms
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).min(1 << 20);
    }

    let mut per_iter_ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(" {:>10.1} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64),
        Throughput::Elements(n) => format!(" {:>10.1} Kelem/s", n as f64 / median * 1e9 / 1e3),
    });
    println!(
        "{label:<48} time: [{} {} {}]{}",
        format_ns(lo),
        format_ns(median),
        format_ns(hi),
        rate.unwrap_or_default(),
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        b.iter(|| black_box(21 * 2));
        assert!(b.elapsed > Duration::ZERO || b.iters == 0);
    }
}
