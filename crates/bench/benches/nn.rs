//! Criterion: forward/backward cost of the evaluation models.

use criterion::{criterion_group, criterion_main, Criterion};
use fs_tensor::loss::Target;
use fs_tensor::model::{convnet2, logistic_regression, mlp, Model};
use fs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_models(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("models");

    let mut logreg = logistic_regression(64, 10, &mut rng);
    let x = Tensor::full(&[20, 64], 0.3);
    let y = Target::Classes((0..20).map(|i| i % 10).collect());
    group.bench_function("logreg_loss_grad_b20", |b| {
        b.iter(|| logreg.loss_grad(std::hint::black_box(&x), std::hint::black_box(&y)))
    });

    let mut net = mlp(&[64, 48, 10], &mut rng);
    group.bench_function("mlp_loss_grad_b20", |b| {
        b.iter(|| net.loss_grad(std::hint::black_box(&x), std::hint::black_box(&y)))
    });

    let mut conv = convnet2(1, 8, 32, 10, 0.0, &mut rng);
    let xi = Tensor::full(&[20, 1, 8, 8], 0.3);
    group.bench_function("convnet2_loss_grad_b20", |b| {
        b.iter(|| conv.loss_grad(std::hint::black_box(&xi), std::hint::black_box(&y)))
    });
    group.bench_function("convnet2_predict_b20", |b| {
        b.iter(|| conv.predict(std::hint::black_box(&xi)))
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
