//! Synthetic graph tasks for multi-goal FL (§3.4.2).
//!
//! The paper's multi-goal scenarios federate institutes that share a graph
//! encoder while optimizing *different* goals (classification of enzyme type,
//! regression of solubility, …). Here each client owns fixed-size synthetic
//! graphs drawn from two structural families (triangle-rich "cliquey" graphs
//! vs star-like "hubby" graphs); classification clients predict the family,
//! regression clients predict edge density. Both tasks depend on structure, so
//! a shared graph encoder genuinely transfers between goals.

use crate::dataset::{ClientData, ClientSplit, FedDataset};
use fs_tensor::loss::Target;
use fs_tensor::model::Gcn;
use fs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The learning goal a client optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphTask {
    /// Binary structural-family classification.
    Classification,
    /// Edge-density regression.
    Regression,
}

/// Configuration for the multi-goal graph generator.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Nodes per graph (all graphs are padded/truncated to this size).
    pub nodes: usize,
    /// Input features per node.
    pub feats: usize,
    /// Graphs per client.
    pub per_client: usize,
    /// Task per client (also determines the number of clients).
    pub tasks: Vec<GraphTask>,
    /// Seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            nodes: 8,
            feats: 4,
            per_client: 30,
            tasks: vec![
                GraphTask::Classification,
                GraphTask::Classification,
                GraphTask::Regression,
            ],
            seed: 13,
        }
    }
}

/// Generates one synthetic graph of `family` 0 (clique-like) or 1 (star-like),
/// returning `(adjacency, features, edge_density)`.
fn gen_graph(n: usize, f: usize, family: usize, rng: &mut StdRng) -> (Tensor, Tensor, f32) {
    let mut adj = Tensor::zeros(&[n, n]);
    let mut edges = 0usize;
    match family {
        0 => {
            // two dense cliques joined by one bridge
            let half = n / 2;
            for i in 0..n {
                for j in (i + 1)..n {
                    let same = (i < half) == (j < half);
                    let p = if same { 0.92 } else { 0.02 };
                    if rng.gen::<f32>() < p {
                        *adj.at_mut(i, j) = 1.0;
                        *adj.at_mut(j, i) = 1.0;
                        edges += 1;
                    }
                }
            }
        }
        _ => {
            // star: node 0 is a hub; leaves sparsely connected
            for j in 1..n {
                if rng.gen::<f32>() < 0.95 {
                    *adj.at_mut(0, j) = 1.0;
                    *adj.at_mut(j, 0) = 1.0;
                    edges += 1;
                }
            }
            for i in 1..n {
                for j in (i + 1)..n {
                    if rng.gen::<f32>() < 0.02 {
                        *adj.at_mut(i, j) = 1.0;
                        *adj.at_mut(j, i) = 1.0;
                        edges += 1;
                    }
                }
            }
        }
    }
    // features: normalized degree, max neighbour degree (hub detector),
    // then noise dims — everything a 2-layer GCN needs to separate the
    // families, plus distractors.
    let degs: Vec<f32> = (0..n).map(|i| adj.row(i).iter().sum::<f32>()).collect();
    let mut feats = Tensor::zeros(&[n, f]);
    for i in 0..n {
        *feats.at_mut(i, 0) = degs[i] / n as f32;
        if f > 1 {
            let max_nb = (0..n)
                .filter(|&j| adj.at(i, j) > 0.0)
                .map(|j| degs[j])
                .fold(0.0f32, f32::max);
            *feats.at_mut(i, 1) = max_nb / n as f32;
        }
        for k in 2..f {
            *feats.at_mut(i, k) = rng.gen::<f32>() - 0.5;
        }
    }
    let density = 2.0 * edges as f32 / (n * (n - 1)) as f32;
    (adj, feats, density)
}

/// Builds the multi-goal federated graph dataset, one client per task entry.
pub fn graph_multitask(cfg: &GraphConfig) -> FedDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let width = cfg.nodes * cfg.nodes + cfg.nodes * cfg.feats;
    let mut clients = Vec::with_capacity(cfg.tasks.len());
    for &task in &cfg.tasks {
        let n = cfg.per_client;
        let mut data = Vec::with_capacity(n * width);
        let mut classes = Vec::new();
        let mut values = Vec::new();
        for _ in 0..n {
            let family = rng.gen_range(0..2usize);
            let (adj, feats, density) = gen_graph(cfg.nodes, cfg.feats, family, &mut rng);
            data.extend(Gcn::pack(&adj, &feats));
            classes.push(family);
            values.push(density);
        }
        let x = Tensor::from_vec(vec![n, width], data);
        let y = match task {
            GraphTask::Classification => Target::Classes(classes),
            GraphTask::Regression => Target::Values(values),
        };
        let all = ClientData { x, y };
        clients.push(ClientSplit::from_fractions(&all, 0.7, 0.15));
    }
    FedDataset {
        clients,
        feature_shape: vec![width],
        num_classes: 2,
        name: "graph-multitask".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_distinct_density() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d0 = 0.0;
        let mut d1 = 0.0;
        for _ in 0..30 {
            d0 += gen_graph(8, 4, 0, &mut rng).2;
            d1 += gen_graph(8, 4, 1, &mut rng).2;
        }
        assert!(d0 / 30.0 > d1 / 30.0 + 0.1, "clique {d0} vs star {d1}");
    }

    #[test]
    fn multitask_mixes_target_kinds() {
        let cfg = GraphConfig::default();
        let d = graph_multitask(&cfg);
        assert_eq!(d.num_clients(), 3);
        assert!(matches!(d.clients[0].train.y, Target::Classes(_)));
        assert!(matches!(d.clients[2].train.y, Target::Values(_)));
        assert_eq!(d.clients[0].train.x.cols(), 8 * 8 + 8 * 4);
    }

    #[test]
    fn adjacency_is_symmetric_binary() {
        let mut rng = StdRng::seed_from_u64(2);
        let (adj, _, _) = gen_graph(6, 3, 0, &mut rng);
        for i in 0..6 {
            for j in 0..6 {
                let v = adj.at(i, j);
                assert!(v == 0.0 || v == 1.0);
                assert_eq!(v, adj.at(j, i));
            }
            assert_eq!(adj.at(i, i), 0.0);
        }
    }
}
