//! The message-flow graph of Appendix E.
//!
//! Nodes are [`Event`]s; an edge `a -> b` means "some handler registered for
//! `a` declares it emits `b`". The verifier builds the *union* graph over the
//! server and every client group, so reachability holds even when only a
//! subset of clients carries a custom handler.

use fs_net::Event;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A directed graph over events.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    nodes: BTreeSet<Event>,
    edges: BTreeMap<Event, BTreeSet<Event>>,
}

impl FlowGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node without edges.
    pub fn add_node(&mut self, e: Event) {
        self.nodes.insert(e);
    }

    /// Adds an edge (and both endpoints).
    pub fn add_edge(&mut self, from: Event, to: Event) {
        self.nodes.insert(from);
        self.nodes.insert(to);
        self.edges.entry(from).or_default().insert(to);
    }

    /// All nodes, ordered.
    pub fn nodes(&self) -> impl Iterator<Item = Event> + '_ {
        self.nodes.iter().copied()
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Successors of a node.
    pub fn successors(&self, e: Event) -> impl Iterator<Item = Event> + '_ {
        self.edges.get(&e).into_iter().flatten().copied()
    }

    /// Whether the node has at least one outgoing edge.
    pub fn has_out_edges(&self, e: Event) -> bool {
        self.edges.get(&e).is_some_and(|s| !s.is_empty())
    }

    /// Every node reachable from `start` (including `start` itself, if it is
    /// a node of the graph).
    pub fn reachable_from(&self, start: Event) -> BTreeSet<Event> {
        let mut seen = BTreeSet::new();
        if !self.nodes.contains(&start) {
            return seen;
        }
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some(n) = queue.pop_front() {
            for next in self.successors(n) {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// Every node from which `target` is reachable (including `target`).
    pub fn can_reach(&self, target: Event) -> BTreeSet<Event> {
        let mut seen = BTreeSet::new();
        if !self.nodes.contains(&target) {
            return seen;
        }
        // reverse adjacency
        let mut rev: BTreeMap<Event, BTreeSet<Event>> = BTreeMap::new();
        for (from, tos) in &self.edges {
            for to in tos {
                rev.entry(*to).or_default().insert(*from);
            }
        }
        let mut queue = VecDeque::from([target]);
        seen.insert(target);
        while let Some(n) = queue.pop_front() {
            if let Some(preds) = rev.get(&n) {
                for p in preds {
                    if seen.insert(*p) {
                        queue.push_back(*p);
                    }
                }
            }
        }
        seen
    }

    /// Nodes that lie on a directed cycle (a non-empty path back to
    /// themselves).
    pub fn on_cycle(&self) -> BTreeSet<Event> {
        let mut cyclic = BTreeSet::new();
        for &n in &self.nodes {
            // BFS from n's successors; if we come back to n, it cycles.
            let mut seen = BTreeSet::new();
            let mut queue: VecDeque<Event> = self.successors(n).collect();
            for s in &queue {
                seen.insert(*s);
            }
            let mut found = queue.contains(&n);
            while let Some(m) = queue.pop_front() {
                if found {
                    break;
                }
                for next in self.successors(m) {
                    if next == n {
                        found = true;
                        break;
                    }
                    if seen.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
            if found {
                cyclic.insert(n);
            }
        }
        cyclic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_net::{Condition, MessageKind};

    fn m(k: MessageKind) -> Event {
        Event::Message(k)
    }
    fn c(cond: Condition) -> Event {
        Event::Condition(cond)
    }

    #[test]
    fn reachability_follows_edges() {
        let mut g = FlowGraph::new();
        g.add_edge(m(MessageKind::JoinIn), m(MessageKind::ModelParams));
        g.add_edge(m(MessageKind::ModelParams), m(MessageKind::Updates));
        g.add_node(m(MessageKind::EvalRequest));
        let r = g.reachable_from(m(MessageKind::JoinIn));
        assert!(r.contains(&m(MessageKind::Updates)));
        assert!(!r.contains(&m(MessageKind::EvalRequest)));
        assert_eq!(g.num_nodes(), 4);
    }

    #[test]
    fn reverse_reachability() {
        let mut g = FlowGraph::new();
        g.add_edge(m(MessageKind::JoinIn), c(Condition::AllJoinedIn));
        g.add_edge(c(Condition::AllJoinedIn), m(MessageKind::Finish));
        g.add_node(m(MessageKind::EvalRequest));
        let r = g.can_reach(m(MessageKind::Finish));
        assert!(r.contains(&m(MessageKind::JoinIn)));
        assert!(!r.contains(&m(MessageKind::EvalRequest)));
    }

    #[test]
    fn cycle_detection_finds_only_cycle_members() {
        let mut g = FlowGraph::new();
        g.add_edge(m(MessageKind::JoinIn), m(MessageKind::ModelParams));
        g.add_edge(m(MessageKind::ModelParams), m(MessageKind::Updates));
        g.add_edge(m(MessageKind::Updates), m(MessageKind::ModelParams));
        g.add_edge(m(MessageKind::Updates), m(MessageKind::Finish));
        let cyc = g.on_cycle();
        assert!(cyc.contains(&m(MessageKind::ModelParams)));
        assert!(cyc.contains(&m(MessageKind::Updates)));
        assert!(!cyc.contains(&m(MessageKind::JoinIn)));
        assert!(!cyc.contains(&m(MessageKind::Finish)));
    }
}
