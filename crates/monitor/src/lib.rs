//! `fs-monitor` — event-driven observability: spans, counters, round metrics.
//!
//! The paper's platform ships a Monitor that records per-round learning
//! metrics and system efficiency alongside the event-driven engine. This
//! crate is that layer for the Rust reproduction:
//!
//! * [`api::Monitor`] — the recording trait: well-nested spans per *track*
//!   (participant), named counters, and per-round learning metrics;
//! * [`api::MonitorHandle`] — the cheap, cloneable handle every hot path
//!   carries. The default handle is *null*: no allocation, no lock, every
//!   record call is a single `Option` test. Observability costs nothing
//!   until a recording monitor is attached;
//! * [`recording::RecordingMonitor`] — the in-memory implementation backing
//!   all exporters, with per-track span stacks that make well-nestedness a
//!   construction invariant rather than a convention;
//! * [`trace`] — Chrome trace-event JSON (loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)) with one named track per
//!   participant;
//! * [`export`] — JSONL round log, CSV counter summary, and the
//!   [`export::BenchSnapshot`] that seeds `BENCH_monitor.json` (rounds/sec
//!   wall-clock, virtual-time-to-target-accuracy, bytes-on-wire).
//!
//! Counter *names* are centralized in [`counters`] so producers (fs-core's
//! runner, fs-net's TCP backend) and consumers (exporters, tests) agree on
//! the vocabulary. The byte counters are bumped at the exact points where
//! the simulator charges communication cost, so monitor totals reconcile
//! with sim-charged bytes by construction — the e2e suite asserts equality.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod api;
pub mod buffer;
pub mod export;
pub mod recording;
pub mod trace;

pub use api::{counters, Monitor, MonitorHandle, NullMonitor, TrackId, SERVER_TRACK};
pub use buffer::{BufferMonitor, MonitorOp};
pub use export::{
    BenchRow, BenchSnapshot, MatmulRow, PerfRow, PerfSnapshot, ScaleRow, ScaleSnapshot,
};
pub use recording::{RecordingMonitor, RoundRecord, SpanRecord};
