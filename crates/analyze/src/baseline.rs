//! The debt ratchet: a committed `ANALYZE_baseline.json` of known findings.
//!
//! Semantics: a finding is identified by `(file, code)` with a count —
//! deliberately *not* by line, so unrelated edits to a file don't churn the
//! baseline. `fsa --check` fails when any `(file, code)` count exceeds its
//! baselined count (a **new** finding); counts going down passes with a
//! hint to re-freeze, so debt only ever shrinks. Notes never enter the
//! baseline — only Error and Warning findings gate.

use crate::diag::{Code, Finding};
use std::collections::BTreeMap;

/// One `(file, code)` debt entry.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BaselineEntry {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// `FSAnnn` code string.
    pub code: String,
    /// Baselined finding count (> 0).
    pub count: u64,
}

/// The committed baseline document.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Baseline {
    /// Schema version; bump on incompatible changes.
    pub schema_version: u64,
    /// Producing tool (`"fsa"`).
    pub tool: String,
    /// Sum of entry counts (redundant, checked by `validate`).
    pub total: u64,
    /// Entries sorted by `(file, code)`.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Current schema version.
    pub const SCHEMA_VERSION: u64 = 1;

    /// Freezes the gating findings (Error + Warning) into a baseline.
    pub fn from_findings<'a>(findings: impl IntoIterator<Item = &'a Finding>) -> Self {
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            if f.gates() {
                *counts
                    .entry((f.file.clone(), f.code.as_str().to_string()))
                    .or_default() += 1;
            }
        }
        let entries: Vec<BaselineEntry> = counts
            .into_iter()
            .map(|((file, code), count)| BaselineEntry { file, code, count })
            .collect();
        let total = entries.iter().map(|e| e.count).sum();
        Self {
            schema_version: Self::SCHEMA_VERSION,
            tool: "fsa".into(),
            total,
            entries,
        }
    }

    /// Schema check: version, tool, sort order, positive counts, known
    /// codes, and the redundant total.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != Self::SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != {}",
                self.schema_version,
                Self::SCHEMA_VERSION
            ));
        }
        if self.tool != "fsa" {
            return Err(format!("tool {:?} != \"fsa\"", self.tool));
        }
        let mut prev: Option<(&str, &str)> = None;
        let mut total = 0u64;
        for e in &self.entries {
            if e.count == 0 {
                return Err(format!("{}:{} has zero count", e.file, e.code));
            }
            if Code::parse(&e.code).is_none() {
                return Err(format!("{}: unknown code {:?}", e.file, e.code));
            }
            let key = (e.file.as_str(), e.code.as_str());
            if let Some(p) = prev {
                if p >= key {
                    return Err(format!(
                        "entries not strictly sorted by (file, code) at {}:{}",
                        e.file, e.code
                    ));
                }
            }
            prev = Some(key);
            total += e.count;
        }
        if total != self.total {
            return Err(format!("total {} != sum of counts {}", self.total, total));
        }
        Ok(())
    }

    /// Pretty JSON (the committed form).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| {
            // fsa::allow(FSA022, serializing a plain data struct cannot fail; a panic here is a tool bug, not a course path)
            panic!("baseline serialization failed: {e:?}")
        })
    }

    /// Parses and validates the committed form.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let b: Baseline = serde_json::from_str(s).map_err(|e| format!("{e:?}"))?;
        b.validate()?;
        Ok(b)
    }

    /// Baselined count for `(file, code)`.
    fn count_for(&self, file: &str, code: &str) -> u64 {
        self.entries
            .iter()
            .find(|e| e.file == file && e.code == code)
            .map(|e| e.count)
            .unwrap_or(0)
    }
}

/// The ratchet comparison's outcome.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RatchetOutcome {
    /// Findings in excess of the baseline, per `(file, code)` — these fail
    /// CI. Holds *all* current findings of an exceeded `(file, code)` pair
    /// so the report shows every candidate line.
    pub new: Vec<Finding>,
    /// `(file, code, baselined, current)` where current < baselined — debt
    /// went down; re-freeze to lock in the improvement.
    pub improved: Vec<(String, String, u64, u64)>,
}

impl RatchetOutcome {
    /// CI verdict.
    pub fn passes(&self) -> bool {
        self.new.is_empty()
    }
}

/// Compares current gating findings against the baseline.
pub fn ratchet(current: &[Finding], baseline: &Baseline) -> RatchetOutcome {
    let mut counts: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
    for f in current {
        if f.gates() {
            counts
                .entry((f.file.clone(), f.code.as_str().to_string()))
                .or_default()
                .push(f);
        }
    }
    let mut out = RatchetOutcome::default();
    for ((file, code), fs) in &counts {
        let baselined = baseline.count_for(file, code);
        if fs.len() as u64 > baselined {
            out.new.extend(fs.iter().map(|f| (*f).clone()));
        } else if (fs.len() as u64) < baselined {
            out.improved
                .push((file.clone(), code.clone(), baselined, fs.len() as u64));
        }
    }
    for e in &baseline.entries {
        if !counts.contains_key(&(e.file.clone(), e.code.clone())) {
            out.improved
                .push((e.file.clone(), e.code.clone(), e.count, 0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn finding(file: &str, line: u32, code: Code, sev: Severity) -> Finding {
        Finding {
            code,
            severity: sev,
            file: file.into(),
            line,
            message: "m".into(),
            suggestion: None,
        }
    }

    #[test]
    fn roundtrip_and_validate() {
        let fs = [
            finding("a.rs", 1, Code::Unwrap, Severity::Error),
            finding("a.rs", 9, Code::Unwrap, Severity::Error),
            finding("b.rs", 2, Code::Expect, Severity::Warning),
            finding("b.rs", 3, Code::SliceIndex, Severity::Note), // not baselined
        ];
        let b = Baseline::from_findings(fs.iter());
        assert_eq!(b.total, 3);
        assert_eq!(b.entries.len(), 2);
        let back = Baseline::from_json(&b.to_json()).expect("roundtrip");
        assert_eq!(back, b);
    }

    #[test]
    fn validate_rejects_malformed() {
        let fs = [finding("a.rs", 1, Code::Unwrap, Severity::Error)];
        let mut b = Baseline::from_findings(fs.iter());
        b.total = 7;
        assert!(b.validate().unwrap_err().contains("total"));
        let mut b2 = Baseline::from_findings(fs.iter());
        b2.entries[0].code = "FSA999".into();
        assert!(b2.validate().unwrap_err().contains("unknown code"));
        let mut b3 = Baseline::from_findings(fs.iter());
        b3.entries.push(b3.entries[0].clone());
        b3.total *= 2;
        assert!(b3.validate().unwrap_err().contains("sorted"));
    }

    #[test]
    fn ratchet_fails_on_new_passes_on_equal_hints_on_less() {
        let old = [
            finding("a.rs", 1, Code::Unwrap, Severity::Error),
            finding("b.rs", 2, Code::Expect, Severity::Warning),
        ];
        let b = Baseline::from_findings(old.iter());

        // equal → pass, no hints
        let out = ratchet(&old, &b);
        assert!(out.passes() && out.improved.is_empty());

        // synthetic new finding → fail, and the report names it
        let mut plus = old.to_vec();
        plus.push(finding("a.rs", 40, Code::Unwrap, Severity::Error));
        let out = ratchet(&plus, &b);
        assert!(!out.passes());
        assert_eq!(out.new.len(), 2, "all candidate lines of the pair surface");

        // a note never trips the ratchet
        let mut noted = old.to_vec();
        noted.push(finding("a.rs", 40, Code::SliceIndex, Severity::Note));
        assert!(ratchet(&noted, &b).passes());

        // debt going down → pass with an improvement hint
        let out = ratchet(&old[..1], &b);
        assert!(out.passes());
        assert_eq!(out.improved.len(), 1);
        assert_eq!(out.improved[0].3, 0);
    }
}
