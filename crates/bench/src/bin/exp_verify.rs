//! **fs-verify CLI** — runs the static course verifier (§3.6 / Appendix E)
//! over the full strategy × workload grid used by the paper's experiments,
//! then demonstrates the diagnostic engine on a suite of deliberately broken
//! courses and configs.
//!
//! Every in-repo experiment course must verify clean; the process exits
//! non-zero if any does not. The broken suite is expected to be rejected and
//! prints each rendered diagnostic table.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_verify            # grid + broken suite
//! cargo run -p fs-bench --release --bin exp_verify -- --grid  # grid only
//! ```

use fs_bench::strategies::Strategy;
use fs_bench::workloads::{cifar, femnist, twitter, Workload};
use fs_core::config::{CodecSpec, FlConfig};
use fs_core::{verify_assembled, Client, Condition, Event, StandaloneRunner};
use fs_net::MessageKind;
use fs_verify::VerifyReport;

fn verify_runner(runner: &StandaloneRunner) -> VerifyReport {
    let clients: Vec<&Client> = runner.clients.values().collect();
    verify_assembled(&runner.server, &clients, Some(&runner.server.state.cfg))
}

/// Verifies every fig-17 strategy on every workload. Returns the number of
/// courses that failed to verify clean.
fn verify_grid(workloads: &[Workload]) -> usize {
    println!("== experiment grid: every course must verify clean ==");
    let mut dirty = 0;
    for wl in workloads {
        for strat in Strategy::fig17() {
            let cfg = strat.configure(wl);
            let runner = wl.build(cfg);
            let report = verify_runner(&runner);
            let status = if report.is_clean() { "clean" } else { "DIRTY" };
            println!("  {:<10} {:<16} {status}", wl.name, strat.label());
            if !report.is_clean() {
                print!("{}", report.render_table());
                dirty += 1;
            }
        }
    }
    dirty
}

/// A deliberately broken course or config and the defect it plants.
struct BrokenCase {
    name: &'static str,
    defect: &'static str,
    build: fn(&Workload) -> StandaloneRunner,
}

fn base_cfg(wl: &Workload) -> FlConfig {
    wl.base_cfg.clone().sync_vanilla()
}

fn broken_cases() -> Vec<BrokenCase> {
    vec![
        BrokenCase {
            name: "no-aggregation",
            defect: "server's all_received handler removed: no path to Finish",
            build: |wl| {
                let mut r = wl.build(base_cfg(wl));
                r.server
                    .registry_mut()
                    .unregister(Event::Condition(Condition::AllReceived));
                r
            },
        },
        BrokenCase {
            name: "deaf-clients",
            defect: "clients cannot receive ModelParams: broadcast unhandled",
            build: |wl| {
                let mut r = wl.build(base_cfg(wl));
                for c in r.clients.values_mut() {
                    c.registry_mut()
                        .unregister(Event::Message(MessageKind::ModelParams));
                }
                r
            },
        },
        BrokenCase {
            name: "gossip-to-nobody",
            defect: "clients declare a custom message no server handler accepts",
            build: |wl| {
                let mut r = wl.build(base_cfg(wl));
                for c in r.clients.values_mut() {
                    c.registry_mut().register(
                        Event::Message(MessageKind::ModelParams),
                        "train_and_gossip",
                        vec![
                            Event::Message(MessageKind::Updates),
                            Event::Message(MessageKind::Custom(9)),
                        ],
                        Box::new(|_, _, _| {}),
                    );
                }
                r
            },
        },
        BrokenCase {
            name: "orphan-handler",
            defect: "handler registered for an event nothing emits",
            build: |wl| {
                let mut r = wl.build(base_cfg(wl));
                r.server.registry_mut().register(
                    Event::Message(MessageKind::Custom(33)),
                    "orphan",
                    vec![],
                    Box::new(|_, _, _| {}),
                );
                r
            },
        },
        BrokenCase {
            name: "bad-quant-bits",
            defect: "upload codec configured with 3-bit quantization",
            // Mutated after build: the codec constructor itself would panic
            // on 3 bits, which is exactly what the lint catches statically.
            build: |wl| {
                let mut r = wl.build(base_cfg(wl));
                r.server.state.cfg.compression.upload = Some(CodecSpec::UniformQuant { bits: 3 });
                r
            },
        },
        BrokenCase {
            name: "zero-eval-every",
            defect: "eval_every = 0 would divide the course by zero",
            build: |wl| {
                let mut cfg = base_cfg(wl);
                cfg.eval_every = 0;
                wl.build(cfg)
            },
        },
    ]
}

fn run_broken_suite(wl: &Workload) -> usize {
    println!("\n== broken-course suite: every case must be rejected ==");
    let mut missed = 0;
    for case in broken_cases() {
        let runner = (case.build)(wl);
        let report = verify_runner(&runner);
        println!("\n-- {} ({}) --", case.name, case.defect);
        print!("{}", report.render_table());
        if report.is_clean() {
            println!("  !! expected a rejection, report is clean");
            missed += 1;
        }
    }
    missed
}

fn main() {
    let grid_only = std::env::args().any(|a| a == "--grid");
    let workloads = [femnist(1), cifar(1), twitter(1)];
    let dirty = verify_grid(&workloads);
    let missed = if grid_only {
        0
    } else {
        run_broken_suite(&workloads[2])
    };
    if dirty > 0 || missed > 0 {
        eprintln!("\n{dirty} dirty course(s), {missed} undetected defect(s)");
        std::process::exit(1);
    }
    println!("\nall experiment courses verify clean; all planted defects detected");
}
