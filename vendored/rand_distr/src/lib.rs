//! Minimal in-repo stand-in for the `rand_distr` crate.
//!
//! Provides exactly the distributions the workspace samples — [`Normal`],
//! [`LogNormal`], [`Gamma`], and [`Uniform`] over `f64` — with the
//! constructor-returns-`Result` shape of upstream `rand_distr` so call sites
//! (`Normal::new(..).expect("valid")`) compile unchanged.

use rand::{Rng, RngCore, StandardSample};
use std::fmt;

/// Invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types from which values can be sampled.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // uniform in (0, 1]: avoids ln(0)
    1.0 - f64::from_rng(rng)
}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; stateless (no cached spare) so `sample(&self)` stays pure
    let u1 = unit_open(rng);
    let u2 = f64::from_rng(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Self { mean, std_dev })
        } else {
            Err(Error("Normal requires finite mean and std_dev >= 0"))
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates the distribution of `exp(X)` with `X ~ N(mu, sigma²)`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(Self { norm: Normal::new(mu, sigma)? })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Gamma distribution with the given shape and scale.
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates `Gamma(shape, scale)`; both must be positive and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if shape > 0.0 && shape.is_finite() && scale > 0.0 && scale.is_finite() {
            Ok(Self { shape, scale })
        } else {
            Err(Error("Gamma requires positive finite shape and scale"))
        }
    }

    fn sample_shape_ge1<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        // Marsaglia–Tsang squeeze method
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = unit_open(rng);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let g = if self.shape >= 1.0 {
            Self::sample_shape_ge1(self.shape, rng)
        } else {
            // boost: Gamma(a) = Gamma(a+1) * U^(1/a)
            let boosted = Self::sample_shape_ge1(self.shape + 1.0, rng);
            boosted * unit_open(rng).powf(1.0 / self.shape)
        };
        g * self.scale
    }
}

/// Uniform distribution over an interval.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform::new requires lo < hi");
        Self { lo, hi }
    }

    /// Uniform over `[lo, hi]`.
    pub fn new_inclusive(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
        Self { lo, hi }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + f64::from_rng(rng) * (self.hi - self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let s: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&s);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(50.0f64.ln(), 1.0).unwrap();
        let mut s: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        assert!((median / 50.0 - 1.0).abs() < 0.1, "median {median}");
        assert!(s.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_mean_is_shape_times_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(shape, scale) in &[(0.5f64, 1.0f64), (2.0, 3.0), (9.0, 0.5)] {
            let d = Gamma::new(shape, scale).unwrap();
            let s: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
            let (mean, _) = moments(&s);
            let expect = shape * scale;
            assert!((mean / expect - 1.0).abs() < 0.05, "shape {shape}: mean {mean} vs {expect}");
            assert!(s.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Uniform::new_inclusive(-2.0, 2.0);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-2.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
    }
}
