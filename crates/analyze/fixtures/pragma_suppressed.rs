// Pragma fixture: justified findings cost nothing, in both placements.
pub fn head(xs: &[u32]) -> u32 {
    // fsa::allow(FSA020, fixture demonstrates the standalone placement)
    *xs.first().unwrap()
}

pub fn tail(xs: &[u32]) -> u32 {
    *xs.last().unwrap() // fsa::allow(FSA020, trailing form on the same line)
}
