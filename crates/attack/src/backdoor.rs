//! Backdoor attacks by data poisoning.
//!
//! The attacker's objective (§4.2): the model behaves normally on clean data
//! but classifies *triggered* inputs into an attacker-chosen class. Provided
//! poisoners:
//!
//! * [`Trigger`] + [`poison_dataset`] — BadNets: stamp a pixel patch, relabel
//!   to the target class;
//! * [`dba_fragments`] — DBA: split one global trigger into fragments, one
//!   per colluding client, so no single update carries the full pattern;
//! * [`label_flip`] — classic label-flipping (a ↦ b);
//! * [`edge_case_indices`] — edge-case backdoors poison only the tail inputs
//!   the model is least confident about.

use fs_data::ClientData;
use fs_tensor::loss::Target;
use fs_tensor::model::Model;
use fs_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A rectangular pixel trigger on `[C, H, W]` images.
#[derive(Clone, Debug)]
pub struct Trigger {
    /// Top-left row.
    pub row: usize,
    /// Top-left column.
    pub col: usize,
    /// Patch height.
    pub h: usize,
    /// Patch width.
    pub w: usize,
    /// Pixel value stamped into the patch.
    pub value: f32,
}

impl Trigger {
    /// A default 2x2 corner trigger.
    pub fn corner() -> Self {
        Self {
            row: 0,
            col: 0,
            h: 2,
            w: 2,
            value: 3.0,
        }
    }

    /// Stamps the trigger into every image of a `[N, C, H, W]` batch,
    /// in place.
    pub fn stamp(&self, x: &mut Tensor) {
        assert_eq!(x.shape().len(), 4, "trigger expects [N, C, H, W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert!(
            self.row + self.h <= h && self.col + self.w <= w,
            "trigger out of bounds"
        );
        let data = x.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                for dy in 0..self.h {
                    for dx in 0..self.w {
                        data[((ni * c + ci) * h + self.row + dy) * w + self.col + dx] = self.value;
                    }
                }
            }
        }
    }
}

/// Poisons a fraction of `data` in place: stamps `trigger` and relabels to
/// `target_class`. Returns the poisoned indices.
pub fn poison_dataset(
    data: &mut ClientData,
    trigger: &Trigger,
    target_class: usize,
    fraction: f32,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let n = data.len();
    let count = ((n as f32) * fraction).round() as usize;
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(count);
    let (c, h, w) = (data.x.shape()[1], data.x.shape()[2], data.x.shape()[3]);
    for &i in &idx {
        // stamp one example
        let mut one = data.batch(&[i]);
        trigger.stamp(&mut one.x);
        let stride = c * h * w;
        data.x.data_mut()[i * stride..(i + 1) * stride].copy_from_slice(one.x.data());
        if let Target::Classes(labels) = &mut data.y {
            labels[i] = target_class;
        }
    }
    idx
}

/// Splits a trigger into `k` single-column fragments (DBA): colluding client
/// `j` stamps only fragment `j`; the server-side aggregate reassembles the
/// full pattern.
pub fn dba_fragments(trigger: &Trigger, k: usize) -> Vec<Trigger> {
    assert!(
        k >= 1 && k <= trigger.w,
        "cannot split {}-wide trigger into {k}",
        trigger.w
    );
    let per = trigger.w / k;
    (0..k)
        .map(|j| Trigger {
            row: trigger.row,
            col: trigger.col + j * per,
            h: trigger.h,
            w: if j == k - 1 { trigger.w - j * per } else { per },
            value: trigger.value,
        })
        .collect()
}

/// A Blended-style trigger (Chen et al.): instead of overwriting a patch, a
/// fixed full-image pattern is alpha-blended into the input —
/// `x' = (1 - alpha) x + alpha * pattern` — which is far less visible than a
/// BadNets patch while remaining a reliable backdoor key.
#[derive(Clone, Debug)]
pub struct BlendedTrigger {
    /// The blended pattern (one image, `[C, H, W]` flattened).
    pub pattern: Vec<f32>,
    /// Blend strength in `(0, 1]`.
    pub alpha: f32,
}

impl BlendedTrigger {
    /// A deterministic pseudo-random pattern for `[c, h, w]` images.
    pub fn random(c: usize, h: usize, w: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let pattern = (0..c * h * w)
            .map(|_| rng.gen_range(-1.0f32..2.0))
            .collect();
        Self {
            pattern,
            alpha: 0.25,
        }
    }

    /// Blends the pattern into every image of a `[N, C, H, W]` batch.
    pub fn stamp(&self, x: &mut Tensor) {
        assert_eq!(x.shape().len(), 4, "blended trigger expects [N, C, H, W]");
        let per = x.shape()[1] * x.shape()[2] * x.shape()[3];
        assert_eq!(per, self.pattern.len(), "pattern size mismatch");
        let a = self.alpha;
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = (1.0 - a) * *v + a * self.pattern[i % per];
        }
    }
}

/// A WaNet-style warping trigger (Nguyen & Tran): a fixed smooth displacement
/// field subtly warps the image geometry — imperceptible per pixel, but a
/// consistent key the model can learn. Bilinear resampling on `[N, C, H, W]`.
#[derive(Clone, Debug)]
pub struct WarpTrigger {
    /// Per-pixel displacement `(dy, dx)`, length `h * w`.
    pub field: Vec<(f32, f32)>,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
}

impl WarpTrigger {
    /// A smooth sinusoidal displacement field of the given strength (pixels).
    pub fn sinusoidal(h: usize, w: usize, strength: f32) -> Self {
        let mut field = Vec::with_capacity(h * w);
        for y in 0..h {
            for x in 0..w {
                let fy = strength * (2.0 * std::f32::consts::PI * x as f32 / w as f32).sin();
                let fx = strength * (2.0 * std::f32::consts::PI * y as f32 / h as f32).cos();
                field.push((fy, fx));
            }
        }
        Self { field, h, w }
    }

    /// Warps every image of a `[N, C, H, W]` batch in place.
    pub fn stamp(&self, x: &mut Tensor) {
        assert_eq!(x.shape().len(), 4, "warp trigger expects [N, C, H, W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!((h, w), (self.h, self.w), "field size mismatch");
        let src = x.data().to_vec();
        let dst = x.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for y in 0..h {
                    for xx in 0..w {
                        let (dy, dx) = self.field[y * w + xx];
                        let sy = (y as f32 + dy).clamp(0.0, (h - 1) as f32);
                        let sx = (xx as f32 + dx).clamp(0.0, (w - 1) as f32);
                        let (y0, x0) = (sy.floor() as usize, sx.floor() as usize);
                        let (y1, x1) = ((y0 + 1).min(h - 1), (x0 + 1).min(w - 1));
                        let (fy, fx) = (sy - y0 as f32, sx - x0 as f32);
                        let v00 = src[base + y0 * w + x0];
                        let v01 = src[base + y0 * w + x1];
                        let v10 = src[base + y1 * w + x0];
                        let v11 = src[base + y1 * w + x1];
                        dst[base + y * w + xx] = v00 * (1.0 - fy) * (1.0 - fx)
                            + v01 * (1.0 - fy) * fx
                            + v10 * fy * (1.0 - fx)
                            + v11 * fy * fx;
                    }
                }
            }
        }
    }
}

/// Flips every label `from` to `to`, returning how many were flipped.
pub fn label_flip(data: &mut ClientData, from: usize, to: usize) -> usize {
    let mut flipped = 0;
    if let Target::Classes(labels) = &mut data.y {
        for l in labels.iter_mut() {
            if *l == from {
                *l = to;
                flipped += 1;
            }
        }
    }
    flipped
}

/// Indices of the `count` examples the model is *least* confident about —
/// the "edge cases" (tail inputs) that edge-case backdoors poison because
/// their gradients conflict least with the benign objective.
pub fn edge_case_indices(model: &mut dyn Model, data: &ClientData, count: usize) -> Vec<usize> {
    let logits = model.predict(&data.x);
    let probs = fs_tensor::loss::softmax(&logits);
    let mut conf: Vec<(usize, f32)> = (0..data.len())
        .map(|i| {
            let row = probs.row(i);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            (i, max)
        })
        .collect();
    conf.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite confidence"));
    conf.into_iter().take(count).map(|(i, _)| i).collect()
}

/// Attack success rate: the fraction of *triggered* test inputs classified as
/// the target class (ground-truth target-class examples are excluded so clean
/// accuracy does not inflate the score).
pub fn attack_success_rate(
    model: &mut dyn Model,
    clean_test: &ClientData,
    trigger: &Trigger,
    target_class: usize,
) -> f32 {
    let labels = match &clean_test.y {
        Target::Classes(c) => c.clone(),
        _ => return 0.0,
    };
    let keep: Vec<usize> = (0..clean_test.len())
        .filter(|&i| labels[i] != target_class)
        .collect();
    if keep.is_empty() {
        return 0.0;
    }
    let mut batch = clean_test.batch(&keep);
    trigger.stamp(&mut batch.x);
    let preds = model.predict(&batch.x).argmax_rows();
    preds.iter().filter(|&&p| p == target_class).count() as f32 / keep.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_data::synth::{cifar_like, ImageConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn image_data() -> ClientData {
        let cfg = ImageConfig {
            num_clients: 1,
            per_client: 40,
            img: 8,
            ..Default::default()
        };
        cifar_like(&cfg, None).clients[0].train.clone()
    }

    #[test]
    fn trigger_stamps_patch() {
        let mut x = Tensor::zeros(&[2, 1, 8, 8]);
        let t = Trigger::corner();
        t.stamp(&mut x);
        assert_eq!(x.data()[0], 3.0); // (0,0)
        assert_eq!(x.data()[1], 3.0); // (0,1)
        assert_eq!(x.data()[8], 3.0); // (1,0)
        assert_eq!(x.data()[2], 0.0); // (0,2) untouched
                                      // second image too
        assert_eq!(x.data()[64], 3.0);
    }

    #[test]
    fn poison_relabels_and_stamps() {
        let mut d = image_data();
        let mut rng = StdRng::seed_from_u64(0);
        let idx = poison_dataset(&mut d, &Trigger::corner(), 7, 0.25, &mut rng);
        assert_eq!(idx.len(), ((d.len() as f32) * 0.25).round() as usize);
        let labels = match &d.y {
            Target::Classes(c) => c.clone(),
            _ => unreachable!(),
        };
        for &i in &idx {
            assert_eq!(labels[i], 7);
            let b = d.batch(&[i]);
            assert_eq!(b.x.data()[0], 3.0);
        }
    }

    #[test]
    fn dba_fragments_tile_the_trigger() {
        let t = Trigger {
            row: 1,
            col: 2,
            h: 2,
            w: 4,
            value: 3.0,
        };
        let frags = dba_fragments(&t, 2);
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].col, 2);
        assert_eq!(frags[0].w, 2);
        assert_eq!(frags[1].col, 4);
        assert_eq!(frags[1].w, 2);
        // stamping all fragments equals stamping the whole trigger
        let mut a = Tensor::zeros(&[1, 1, 8, 8]);
        let mut b = Tensor::zeros(&[1, 1, 8, 8]);
        t.stamp(&mut a);
        for f in &frags {
            f.stamp(&mut b);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn blended_trigger_preserves_most_signal() {
        let t = BlendedTrigger::random(1, 8, 8, 3);
        let mut x = Tensor::ones(&[2, 1, 8, 8]);
        let before = x.clone();
        t.stamp(&mut x);
        // blended, not overwritten: values moved but stayed correlated
        let diff = x.sub(&before).norm() / before.norm();
        assert!(diff > 0.01, "trigger had no effect");
        assert!(diff < 1.0, "trigger overwrote the image: {diff}");
        // deterministic
        let t2 = BlendedTrigger::random(1, 8, 8, 3);
        assert_eq!(t.pattern, t2.pattern);
    }

    #[test]
    fn warp_trigger_is_subtle_and_consistent() {
        let t = WarpTrigger::sinusoidal(8, 8, 0.7);
        let cfg = ImageConfig {
            num_clients: 1,
            per_client: 4,
            img: 8,
            ..Default::default()
        };
        let d = cifar_like(&cfg, None).clients[0].train.clone();
        let mut a = d.x.clone();
        let mut b = d.x.clone();
        t.stamp(&mut a);
        t.stamp(&mut b);
        assert_eq!(a, b, "warp must be deterministic");
        assert_ne!(a, d.x, "warp must change the image");
        // subtle: per-pixel change is bounded by local image variation
        let rel = a.sub(&d.x).norm() / d.x.norm();
        assert!(rel < 0.8, "warp too destructive: {rel}");
    }

    #[test]
    fn warp_of_constant_image_is_identity() {
        let t = WarpTrigger::sinusoidal(6, 6, 1.0);
        let mut x = Tensor::full(&[1, 1, 6, 6], 3.5);
        t.stamp(&mut x);
        assert!(x.data().iter().all(|&v| (v - 3.5).abs() < 1e-5));
    }

    #[test]
    fn label_flip_counts() {
        let mut d = image_data();
        let before = d.label_histogram(10);
        let flipped = label_flip(&mut d, 0, 1);
        assert_eq!(flipped, before[0]);
        let after = d.label_histogram(10);
        assert_eq!(after[0], 0);
        assert_eq!(after[1], before[0] + before[1]);
    }

    #[test]
    fn edge_cases_are_least_confident() {
        use fs_tensor::model::logistic_regression;
        let d = image_data();
        let flat = ClientData {
            x: d.x.reshape(&[d.len(), 64]),
            y: d.y.clone(),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = logistic_regression(64, 10, &mut rng);
        // train a bit so confidence varies
        for _ in 0..50 {
            let (_, g) = m.loss_grad(&flat.x, &flat.y);
            let mut p = m.get_params();
            p.add_scaled(-0.5, &g);
            m.set_params(&p);
        }
        let edges = edge_case_indices(&mut m, &flat, 5);
        assert_eq!(edges.len(), 5);
        // the least-confident example must not be among the most confident
        let probs = fs_tensor::loss::softmax(&m.predict(&flat.x));
        let conf = |i: usize| {
            probs
                .row(i)
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max)
        };
        let min_all = (0..flat.len()).map(conf).fold(f32::INFINITY, f32::min);
        assert!((conf(edges[0]) - min_all).abs() < 1e-6);
    }
}
