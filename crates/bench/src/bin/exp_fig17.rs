//! **Figure 17** (Appendix I) — the extended asynchronous strategy family on
//! all three benchmark datasets: learning curves and time-to-target summary.
//!
//! Paper's shape: every asynchronous variant beats the synchronous baselines;
//! no single sampler dominates ("no free lunch" — the effectiveness of
//! sampling strategies is case-dependent).
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_fig17 -- [--seed N] [--strategies a,b]
//! ```

use fs_bench::args::ExpArgs;
use fs_bench::output::{render_table, write_json};
use fs_bench::strategies::Strategy;
use fs_bench::workloads::{cifar, femnist, twitter};
use serde::Serialize;

#[derive(Serialize)]
struct CurveSet {
    dataset: String,
    strategy: String,
    points: Vec<(f64, f32)>,
    hours_to_target: Option<f64>,
}

fn main() {
    let args = ExpArgs::parse();
    let seed = args.seed_or(7);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for wl in [femnist(seed), cifar(seed), twitter(seed)] {
        for strat in args.strategies_or(Strategy::fig17()) {
            let mut cfg = strat.configure(&wl);
            cfg.target_accuracy = Some(wl.target_accuracy);
            cfg.parallelism = args.threads_or(1);
            let mut runner = wl.build(cfg);
            let report = runner.run();
            let hours = report
                .time_to_accuracy(wl.target_accuracy)
                .map(|s| s / 3600.0);
            eprintln!("  {} / {}: {:?} h", wl.name, strat.label(), hours);
            rows.push(vec![
                wl.name.to_string(),
                strat.label().to_string(),
                hours.map_or("—".into(), |h| format!("{h:.4}")),
            ]);
            all.push(CurveSet {
                dataset: wl.name.to_string(),
                strategy: strat.label().to_string(),
                points: report
                    .history
                    .iter()
                    .map(|r| (r.time_secs, r.metrics.accuracy))
                    .collect(),
                hours_to_target: hours,
            });
        }
    }
    println!("\nFigure 17 — extended async strategy family, time to target (hours)\n");
    println!("{}", render_table(&["dataset", "strategy", "hours"], &rows));
    let path = write_json("fig17", &all).expect("write results");
    println!("wrote {path}");
}
