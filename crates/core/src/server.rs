//! The server worker.
//!
//! The server holds the global model, the aggregator, the sampler, and the
//! aggregation-trigger conditions. Its default handlers implement every
//! strategy of §3.3 — `all_received` (vanilla sync), `goal_achieved`
//! (FedBuff-style async and Sync-OS), and `time_up` (budgeted async with
//! remedial measures) — combined with the *after-aggregating* /
//! *after-receiving* broadcast manners and the uniform / responsiveness /
//! group samplers.

use crate::aggregator::{Aggregator, ReceivedUpdate};
use crate::config::{AggregationRule, BroadcastManner, FlConfig};
use crate::ctx::Ctx;
use crate::eval::{EvalRecord, GlobalEvaluator};
use crate::event::{Condition, Event};
use crate::registry::Registry;
use crate::sampler::Sampler;
use fs_compress::{decompress, CompressedBlock, Compressor};
use fs_net::{Message, MessageKind, ParticipantId, Payload, SERVER_ID};
use fs_tensor::model::Metrics;
use fs_tensor::ParamMap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// Mutable server state shared by all handlers.
pub struct ServerState {
    /// Course configuration.
    pub cfg: FlConfig,
    /// The global model (shared-key subset in personalized/multi-goal runs).
    pub global: ParamMap,
    /// Global model version: bumps on every aggregation.
    pub version: u64,
    /// Completed aggregation rounds (equal to `version`).
    pub round: u64,
    /// Clients that have joined.
    pub roster: Vec<ParticipantId>,
    /// Index over `roster` for O(log n) membership checks: keeps join and
    /// rejoin handling from scanning the whole roster per message at scale.
    /// Invariant: contains exactly the ids in `roster`.
    pub roster_index: BTreeSet<ParticipantId>,
    /// Clients the course waits for before starting.
    pub expected_clients: usize,
    /// Clients currently training (sampled, not yet replied).
    pub busy: BTreeSet<ParticipantId>,
    /// Buffered usable updates for the next aggregation.
    pub buffer: Vec<ReceivedUpdate>,
    /// Clients sampled for the current synchronous round.
    pub outstanding: BTreeSet<ParticipantId>,
    /// Updates received in the current synchronous round (incl. dropped).
    pub received_this_round: usize,
    /// The aggregation rule's executor.
    pub aggregator: Box<dyn Aggregator>,
    /// Client sampler.
    pub sampler: Sampler,
    /// Course RNG.
    pub rng: StdRng,
    /// Optional centralized evaluator.
    pub evaluator: Option<GlobalEvaluator>,
    /// Global learning curve.
    pub history: Vec<EvalRecord>,
    /// Per-client effective aggregation count (Fig. 10).
    pub agg_count: BTreeMap<ParticipantId, u64>,
    /// Staleness of every aggregated update (Fig. 11).
    pub staleness_log: Vec<u64>,
    /// Updates dropped for exceeding the staleness tolerance.
    pub dropped_updates: u64,
    /// Total updates received.
    pub total_updates: u64,
    /// Model broadcasts sent.
    pub models_sent: u64,
    /// Remedial-measure activations (time_up with insufficient feedback).
    pub remedial_count: u64,
    /// Best observed eval accuracy (early stopping).
    pub best_accuracy: f32,
    /// Evaluations since the best accuracy improved.
    pub evals_since_best: u64,
    /// Why the course ended, once it has.
    pub finish_reason: Option<String>,
    /// Per-client final metrics reported at Finish.
    pub client_reports: BTreeMap<ParticipantId, Metrics>,
    /// Clients removed from the course after their connection died
    /// (distributed runners only; chronological).
    pub dropouts: Vec<ParticipantId>,
    /// Successful client reconnections observed by the transport.
    pub reconnects: u64,
    /// Download codec: when set, broadcasts leave as
    /// `Payload::CompressedModel`.
    pub download_codec: Option<Box<dyn Compressor>>,
    /// Compressed broadcast for the current version, so one aggregation's
    /// fan-out encodes (and advances codec state) exactly once.
    pub broadcast_cache: Option<(u64, CompressedBlock)>,
    /// Past global models kept to reconstruct delta-encoded uploads, pruned
    /// to the staleness tolerance (anything older would be dropped anyway).
    pub global_history: BTreeMap<u64, ParamMap>,
    /// Whether `global_history` is maintained (only needed for delta uploads).
    pub track_history: bool,
    /// Whether the course has been terminated by the server.
    pub done: bool,
}

impl ServerState {
    fn idle_clients(&self) -> Vec<ParticipantId> {
        self.roster
            .iter()
            .copied()
            .filter(|c| !self.busy.contains(c))
            .collect()
    }

    /// The broadcast payload for the current global model, compressed when a
    /// download codec is configured. The compressed block is cached per
    /// version so every recipient of one aggregation gets identical bytes.
    fn broadcast_payload(&mut self) -> Payload {
        match self.download_codec.as_mut() {
            Some(codec) => {
                let block = match &self.broadcast_cache {
                    Some((v, block)) if *v == self.version => block.clone(),
                    _ => {
                        let block = codec.compress(&self.global);
                        self.broadcast_cache = Some((self.version, block.clone()));
                        block
                    }
                };
                Payload::CompressedModel {
                    block,
                    version: self.version,
                }
            }
            None => Payload::Model {
                params: self.global.clone(),
                version: self.version,
            },
        }
    }

    /// Records the current global model for delta-upload reconstruction.
    fn record_history(&mut self) {
        if !self.track_history {
            return;
        }
        self.global_history
            .insert(self.version, self.global.clone());
        let oldest = self.version.saturating_sub(self.cfg.staleness_tolerance);
        self.global_history.retain(|&v, _| v >= oldest);
    }

    /// Broadcasts the current global model to `targets`, marking them busy.
    ///
    /// The payload is computed once (the per-version cache already made every
    /// copy identical) and handed to [`Ctx::broadcast`], which either expands
    /// it per target (legacy runners) or records one cohort-granular batch.
    fn broadcast_to(&mut self, targets: &[ParticipantId], ctx: &mut Ctx) {
        if targets.is_empty() {
            return;
        }
        for &c in targets {
            self.busy.insert(c);
            self.outstanding.insert(c);
        }
        let payload = self.broadcast_payload();
        ctx.broadcast(MessageKind::ModelParams, self.round, payload, targets);
        self.models_sent += targets.len() as u64;
    }

    /// Samples up to `k` idle clients and broadcasts the model to them.
    fn sample_and_broadcast(&mut self, k: usize, ctx: &mut Ctx) {
        if k == 0 {
            return;
        }
        let idle = self.idle_clients();
        let picked = self.sampler.sample(&idle, k, &mut self.rng);
        self.broadcast_to(&picked, ctx);
    }

    /// Refills concurrency to the configured target and re-arms the round
    /// timer when the rule is `time_up`.
    fn start_round(&mut self, ctx: &mut Ctx) {
        self.outstanding.clear();
        self.received_this_round = 0;
        let target = self.cfg.sample_target();
        // Pre-size the round's inbox: the buffer will hold at most one usable
        // update per sampled client before the next aggregation drains it.
        self.buffer
            .reserve(target.saturating_sub(self.buffer.len()));
        let need = target.saturating_sub(self.busy.len());
        self.sample_and_broadcast(need, ctx);
        if let AggregationRule::TimeUp { budget_secs, .. } = self.cfg.rule {
            ctx.arm_timer(budget_secs, Condition::TimeUp, self.round);
        }
    }

    /// The aggregation goal actually reachable with the current roster: a
    /// course that lost clients must not wait for more updates than the
    /// survivors can produce.
    pub fn effective_goal(&self, goal: usize) -> usize {
        goal.min(self.roster.len()).max(1)
    }

    /// Removes a disconnected client from the course (§ fault model): it
    /// leaves the roster, the busy set, and the outstanding set, and the
    /// aggregation conditions are re-evaluated so the round completes with
    /// the survivors instead of waiting forever for the dead client.
    ///
    /// Transport-level notification — call through [`Server::notify_dropout`]
    /// so raised conditions are drained.
    pub fn drop_client(&mut self, id: ParticipantId, ctx: &mut Ctx) {
        let joining = self.models_sent == 0;
        let known = self.roster_index.remove(&id);
        if !known && !joining {
            return; // unknown, or already dropped
        }
        if known {
            let pos = self
                .roster
                .iter()
                .position(|&c| c == id)
                .expect("roster_index tracks roster");
            self.roster.remove(pos);
        }
        self.busy.remove(&id);
        self.outstanding.remove(&id);
        self.dropouts.push(id);
        ctx.monitor.add(fs_monitor::counters::DROPOUTS, 1);
        if joining {
            // a client lost before the course started is no longer awaited
            self.expected_clients = self.expected_clients.saturating_sub(1);
        }
        self.reevaluate_after_roster_change(ctx);
    }

    /// Re-admits a reconnected client. Any work in flight on its old
    /// connection is void (the frames are gone), so the client is treated as
    /// idle: cleared from busy/outstanding, re-added to the roster if it had
    /// been dropped, and the round conditions are re-evaluated so the course
    /// moves on; the client catches the next broadcast.
    ///
    /// Transport-level notification — call through [`Server::notify_rejoin`].
    pub fn rejoin_client(&mut self, id: ParticipantId, ctx: &mut Ctx) {
        self.reconnects += 1;
        ctx.monitor.add(fs_monitor::counters::RECONNECTS, 1);
        if self.roster_index.insert(id) {
            self.roster.push(id);
        }
        self.busy.remove(&id);
        self.outstanding.remove(&id);
        self.reevaluate_after_roster_change(ctx);
    }

    /// After the roster shrank (or a rejoined client was reset to idle),
    /// checks whether a condition the dead client was blocking now holds.
    fn reevaluate_after_roster_change(&mut self, ctx: &mut Ctx) {
        if self.done {
            return;
        }
        if self.roster.is_empty() {
            self.finish_reason = Some("all clients dropped out".to_string());
            ctx.raise(Condition::EarlyStop);
            return;
        }
        if self.models_sent == 0 {
            // still gathering joins: the shrunken expectation may now be met
            if self.roster.len() >= self.expected_clients {
                ctx.raise(Condition::AllJoinedIn);
            }
            return;
        }
        match self.cfg.rule {
            AggregationRule::AllReceived => {
                if self.outstanding.is_empty() {
                    if self.received_this_round > 0 {
                        ctx.raise(Condition::AllReceived);
                    } else {
                        // the whole round's cohort is gone: resample survivors
                        self.start_round(ctx);
                    }
                }
            }
            AggregationRule::GoalAchieved { goal } => {
                if self.buffer.len() >= self.effective_goal(goal) {
                    ctx.raise(Condition::GoalAchieved);
                }
            }
            AggregationRule::TimeUp { .. } => {}
        }
    }

    /// Performs federated aggregation on the buffer and advances the course.
    fn aggregate_and_continue(&mut self, ctx: &mut Ctx) {
        if self.done {
            return;
        }
        let mut staleness_sum = 0u64;
        for u in &self.buffer {
            *self.agg_count.entry(u.client).or_insert(0) += 1;
            self.staleness_log.push(u.staleness);
            staleness_sum += u.staleness;
        }
        ctx.monitor.add(fs_monitor::counters::AGGREGATIONS, 1);
        ctx.monitor.add(
            fs_monitor::counters::UPDATES_AGGREGATED,
            self.buffer.len() as u64,
        );
        ctx.monitor
            .add(fs_monitor::counters::STALENESS_SUM, staleness_sum);
        let buffer = std::mem::take(&mut self.buffer);
        self.global = self.aggregator.aggregate(&self.global, &buffer);
        self.version += 1;
        self.record_history();
        self.round += 1;
        self.received_this_round = 0;
        self.outstanding.clear();

        // centralized evaluation + stop checks
        if self.round.is_multiple_of(self.cfg.eval_every) {
            if let Some(ev) = self.evaluator.as_mut() {
                let metrics = ev.eval_at(self.round, &self.global);
                self.history.push(EvalRecord {
                    round: self.round,
                    time_secs: ctx.now.as_secs(),
                    metrics,
                });
                ctx.monitor.round(self.round, ctx.now, &metrics);
                if let Some(target) = self.cfg.target_accuracy {
                    if metrics.accuracy >= target {
                        self.finish_reason = Some(format!(
                            "target accuracy {target} reached at round {}",
                            self.round
                        ));
                        ctx.raise(Condition::EarlyStop);
                        return;
                    }
                }
                if metrics.accuracy > self.best_accuracy + 1e-4 {
                    self.best_accuracy = metrics.accuracy;
                    self.evals_since_best = 0;
                } else {
                    self.evals_since_best += 1;
                    if let Some(patience) = self.cfg.patience {
                        if self.evals_since_best >= patience {
                            self.finish_reason =
                                Some(format!("early stop: no improvement for {patience} evals"));
                            ctx.raise(Condition::EarlyStop);
                            return;
                        }
                    }
                }
            }
        }
        if self.round >= self.cfg.total_rounds {
            self.finish_reason = Some(format!("round limit {} reached", self.cfg.total_rounds));
            ctx.raise(Condition::EarlyStop);
            return;
        }
        match self.cfg.broadcast {
            BroadcastManner::AfterAggregating => self.start_round(ctx),
            BroadcastManner::AfterReceiving => {
                // concurrency is maintained per-receive; only top up shortfall
                let target = self.cfg.sample_target();
                let need = target.saturating_sub(self.busy.len());
                self.sample_and_broadcast(need, ctx);
                if let AggregationRule::TimeUp { budget_secs, .. } = self.cfg.rule {
                    ctx.arm_timer(budget_secs, Condition::TimeUp, self.round);
                }
            }
        }
    }
}

/// A server participant: state + handler registry.
pub struct Server {
    /// Handler-visible state.
    pub state: ServerState,
    registry: Registry<ServerState>,
}

impl Server {
    /// Creates a server with default handlers for the configured strategy.
    pub fn new(
        cfg: FlConfig,
        global: ParamMap,
        expected_clients: usize,
        aggregator: Box<dyn Aggregator>,
        sampler: Sampler,
        evaluator: Option<GlobalEvaluator>,
    ) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
        let download_codec = cfg.compression.build_download();
        let track_history = cfg.compression.upload.is_some() && cfg.compression.upload_delta;
        let state = ServerState {
            cfg,
            global,
            version: 0,
            round: 0,
            roster: Vec::new(),
            roster_index: BTreeSet::new(),
            expected_clients,
            busy: BTreeSet::new(),
            buffer: Vec::new(),
            outstanding: BTreeSet::new(),
            received_this_round: 0,
            aggregator,
            sampler,
            rng,
            evaluator,
            history: Vec::new(),
            agg_count: BTreeMap::new(),
            staleness_log: Vec::new(),
            dropped_updates: 0,
            total_updates: 0,
            models_sent: 0,
            remedial_count: 0,
            best_accuracy: f32::NEG_INFINITY,
            evals_since_best: 0,
            finish_reason: None,
            client_reports: BTreeMap::new(),
            dropouts: Vec::new(),
            reconnects: 0,
            download_codec,
            broadcast_cache: None,
            global_history: BTreeMap::new(),
            track_history,
            done: false,
        };
        let mut s = Self {
            state,
            registry: Registry::new(),
        };
        s.state.record_history(); // version 0 is a valid delta reference
        s.install_default_handlers();
        s
    }

    /// Access to the handler registry for customization.
    pub fn registry_mut(&mut self) -> &mut Registry<ServerState> {
        &mut self.registry
    }

    /// The effective `<event, handler>` pairs (recorded in course logs).
    pub fn effective_handlers(&self) -> Vec<(Event, &str)> {
        self.registry.effective_handlers()
    }

    /// Registration-conflict warnings.
    pub fn warnings(&self) -> &[String] {
        self.registry.warnings()
    }

    /// Message-flow edges for the completeness checker.
    pub fn flow_edges(&self) -> Vec<(Event, Event)> {
        self.registry.flow_edges()
    }

    /// Emit-conformance violations observed during dispatch.
    pub fn violations(&self) -> &[String] {
        self.registry.violations()
    }

    /// Handler specs for the static verifier.
    pub fn specs(&self) -> Vec<fs_verify::HandlerSpec> {
        self.registry.specs()
    }

    /// Dispatches a message event, then drains raised condition events.
    pub fn handle(&mut self, msg: &Message, ctx: &mut Ctx) {
        self.registry
            .dispatch(&mut self.state, Event::Message(msg.kind), msg, ctx);
        self.drain_conditions(msg, ctx);
    }

    /// Delivers a timer-raised condition event (e.g. `time_up`).
    pub fn handle_timer(&mut self, condition: Condition, round: u64, ctx: &mut Ctx) {
        let synthetic = Message::new(
            SERVER_ID,
            SERVER_ID,
            MessageKind::Custom(0xFFF),
            round,
            Payload::Empty,
        );
        self.registry.dispatch(
            &mut self.state,
            Event::Condition(condition),
            &synthetic,
            ctx,
        );
        self.drain_conditions(&synthetic, ctx);
    }

    /// Transport notification: `id`'s connection died and the dropout policy
    /// chose to continue with the survivors. Applies
    /// [`ServerState::drop_client`] and drains any condition it unblocked.
    pub fn notify_dropout(&mut self, id: ParticipantId, ctx: &mut Ctx) {
        self.state.drop_client(id, ctx);
        let synthetic = Message::new(
            id,
            SERVER_ID,
            MessageKind::Custom(0xFFE),
            self.state.round,
            Payload::Empty,
        );
        self.drain_conditions(&synthetic, ctx);
    }

    /// Transport notification: `id` completed a rejoin handshake. Applies
    /// [`ServerState::rejoin_client`] and drains any condition it unblocked.
    pub fn notify_rejoin(&mut self, id: ParticipantId, ctx: &mut Ctx) {
        self.state.rejoin_client(id, ctx);
        let synthetic = Message::new(
            id,
            SERVER_ID,
            MessageKind::Custom(0xFFE),
            self.state.round,
            Payload::Empty,
        );
        self.drain_conditions(&synthetic, ctx);
    }

    fn drain_conditions(&mut self, msg: &Message, ctx: &mut Ctx) {
        while let Some(cond) = ctx.raised.pop_front() {
            self.registry
                .dispatch(&mut self.state, Event::Condition(cond), msg, ctx);
        }
        if self.state.done {
            ctx.finished = true;
        }
    }

    fn install_default_handlers(&mut self) {
        let rule = self.state.cfg.rule;
        // receiving_join_in: register the client, assign its id, start when
        // everyone has joined.
        self.registry.register(
            Event::Message(MessageKind::JoinIn),
            "register_client",
            vec![
                Event::Message(MessageKind::IdAssignment),
                Event::Condition(Condition::AllJoinedIn),
            ],
            Box::new(|state, msg, ctx| {
                if state.roster_index.insert(msg.sender) {
                    state.roster.push(msg.sender);
                }
                ctx.send(Message::new(
                    SERVER_ID,
                    msg.sender,
                    MessageKind::IdAssignment,
                    0,
                    Payload::Empty,
                ));
                // a duplicate join-in after the course has started must not
                // re-raise all_joined_in (which would restart the round)
                if state.roster.len() >= state.expected_clients && state.models_sent == 0 {
                    ctx.raise(Condition::AllJoinedIn);
                }
            }),
        );

        // all_joined_in: kick off the first round.
        let mut start_emits = vec![Event::Message(MessageKind::ModelParams)];
        if matches!(rule, AggregationRule::TimeUp { .. }) {
            start_emits.push(Event::Condition(Condition::TimeUp));
        }
        self.registry.register(
            Event::Condition(Condition::AllJoinedIn),
            "start_training",
            start_emits,
            Box::new(|state, _msg, ctx| {
                state.start_round(ctx);
            }),
        );

        // receiving_updates: save the update, check the aggregation condition
        // (§3.2 Example 3.2), and in after-receiving manner immediately hand
        // the current model to a sampled idle client (§3.3.1 (iii)).
        let mut update_emits = vec![Event::Message(MessageKind::ModelParams)];
        match rule {
            AggregationRule::AllReceived => {
                update_emits.push(Event::Condition(Condition::AllReceived));
            }
            AggregationRule::GoalAchieved { .. } => {
                update_emits.push(Event::Condition(Condition::GoalAchieved));
            }
            AggregationRule::TimeUp { .. } => {}
        }
        self.registry.register(
            Event::Message(MessageKind::Updates),
            "save_update_check_condition",
            update_emits,
            Box::new(|state, msg, ctx| {
                // `params` stays None when a delta upload's reference model
                // has been pruned from history — such an update is over-stale
                // by construction and falls through to the drop path below
                let (params, start_version, n_samples, n_steps) = match &msg.payload {
                    Payload::Update {
                        params,
                        start_version,
                        n_samples,
                        n_steps,
                    } => (Some(params.clone()), *start_version, *n_samples, *n_steps),
                    Payload::CompressedUpdate {
                        block,
                        start_version,
                        n_samples,
                        n_steps,
                    } => {
                        let reference = if block.delta {
                            state.global_history.get(&block.ref_version)
                        } else {
                            None
                        };
                        let params = decompress(block, reference).ok();
                        (params, *start_version, *n_samples, *n_steps)
                    }
                    other => {
                        debug_assert!(false, "Updates carried {other:?}");
                        return;
                    }
                };
                state.busy.remove(&msg.sender);
                if state.done {
                    return; // late update after termination
                }
                state.total_updates += 1;
                ctx.monitor.add(fs_monitor::counters::UPDATES_RECEIVED, 1);
                // remove (not just test) so a duplicated or replayed reply
                // from the same client cannot be counted twice
                if state.outstanding.remove(&msg.sender) {
                    state.received_this_round += 1;
                }
                let staleness = state.version.saturating_sub(start_version);
                match params {
                    Some(params) if staleness <= state.cfg.staleness_tolerance => {
                        state.buffer.push(ReceivedUpdate {
                            client: msg.sender,
                            params,
                            staleness,
                            n_samples,
                            n_steps,
                        });
                    }
                    _ => {
                        state.dropped_updates += 1;
                        ctx.monitor.add(fs_monitor::counters::UPDATES_DROPPED, 1);
                    }
                }
                let mut aggregating = false;
                match state.cfg.rule {
                    AggregationRule::AllReceived => {
                        if state.received_this_round > 0 && state.outstanding.is_empty() {
                            ctx.raise(Condition::AllReceived);
                            aggregating = true;
                        }
                    }
                    AggregationRule::GoalAchieved { goal } => {
                        // effective_goal: a roster shrunk by dropouts must not
                        // wait for more updates than the survivors can send
                        if state.buffer.len() >= state.effective_goal(goal) {
                            ctx.raise(Condition::GoalAchieved);
                            aggregating = true;
                        }
                    }
                    AggregationRule::TimeUp { .. } => {}
                }
                // after-receiving: hand the current model to one idle client —
                // unless this very update completes an aggregation, in which
                // case aggregate_and_continue tops concurrency up with the
                // *new* model instead of a guaranteed-stale copy of the old one
                if !state.done
                    && !aggregating
                    && state.cfg.broadcast == BroadcastManner::AfterReceiving
                {
                    state.sample_and_broadcast(1, ctx);
                }
            }),
        );

        // all_received / goal_achieved: perform federated aggregation and
        // push the course forward. Only the condition matching the configured
        // rule is linked, so the effective-handler log and the completeness
        // graph describe the actual course.
        let mut agg_emits = vec![
            Event::Message(MessageKind::ModelParams),
            Event::Condition(Condition::EarlyStop),
        ];
        if matches!(rule, AggregationRule::TimeUp { .. }) {
            agg_emits.push(Event::Condition(Condition::TimeUp));
        }
        match rule {
            AggregationRule::AllReceived | AggregationRule::GoalAchieved { .. } => {
                let cond = if matches!(rule, AggregationRule::AllReceived) {
                    Condition::AllReceived
                } else {
                    Condition::GoalAchieved
                };
                self.registry.register(
                    Event::Condition(cond),
                    "federated_aggregation",
                    agg_emits.clone(),
                    Box::new(move |state, _msg, ctx| {
                        state.aggregate_and_continue(ctx);
                    }),
                );
            }
            AggregationRule::TimeUp { .. } => {}
        }

        // time_up: aggregate if enough feedback arrived, otherwise take the
        // remedial measure of extending the budget (§3.3.2).
        if matches!(rule, AggregationRule::TimeUp { .. }) {
            self.registry.register(
                Event::Condition(Condition::TimeUp),
                "time_up_aggregation",
                agg_emits,
                Box::new(|state, msg, ctx| {
                    if msg.round != state.round {
                        return; // stale timer from a finished round
                    }
                    if let AggregationRule::TimeUp {
                        budget_secs,
                        min_feedback,
                    } = state.cfg.rule
                    {
                        if state.buffer.len() >= min_feedback.max(1) {
                            state.aggregate_and_continue(ctx);
                        } else {
                            state.remedial_count += 1;
                            ctx.monitor.add(fs_monitor::counters::REMEDIAL, 1);
                            if state.remedial_count > 10_000 {
                                state.finish_reason = Some(
                                    "remedial limit exceeded (no client feedback)".to_string(),
                                );
                                ctx.raise(Condition::EarlyStop);
                            } else {
                                // remedial measures (§3.3.2): sample additional
                                // clients (crashed ones never leave `busy`) and
                                // extend the time budget
                                let target = state.cfg.sample_target();
                                let need = target.saturating_sub(state.busy.len()).max(1);
                                state.sample_and_broadcast(need, ctx);
                                ctx.arm_timer(budget_secs, Condition::TimeUp, state.round);
                            }
                        }
                    }
                }),
            );
        }

        // early_stop: terminate the course, shipping the final global model.
        self.registry.register(
            Event::Condition(Condition::EarlyStop),
            "terminate",
            vec![Event::Message(MessageKind::Finish)],
            Box::new(|state, _msg, ctx| {
                if state.done {
                    return;
                }
                state.done = true;
                if state.finish_reason.is_none() {
                    state.finish_reason = Some("early stop".to_string());
                }
                // ships the final model compressed when a download codec is
                // configured, like any other broadcast (the payload is built
                // even for an empty roster so the codec cache advances the
                // same way it always did)
                let payload = state.broadcast_payload();
                ctx.broadcast(MessageKind::Finish, state.round, payload, &state.roster);
            }),
        );

        // receiving_metrics: record per-client reports.
        self.registry.register(
            Event::Message(MessageKind::MetricsReport),
            "record_metrics",
            vec![],
            Box::new(|state, msg, _ctx| {
                if let Payload::Report { metrics } = &msg.payload {
                    state.client_reports.insert(msg.sender, *metrics);
                }
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::FedAvg;
    use fs_sim::VirtualTime;
    use fs_tensor::Tensor;

    fn global() -> ParamMap {
        let mut p = ParamMap::new();
        p.insert("w", Tensor::zeros(&[2]));
        p
    }

    fn make_server(cfg: FlConfig, n: usize) -> Server {
        Server::new(
            cfg,
            global(),
            n,
            Box::new(FedAvg::new(0.0)),
            Sampler::Uniform,
            None,
        )
    }

    fn join_all(s: &mut Server, n: u32, ctx: &mut Ctx) {
        for id in 1..=n {
            let m = Message::new(id, SERVER_ID, MessageKind::JoinIn, 0, Payload::Empty);
            s.handle(&m, ctx);
        }
    }

    fn update_msg(id: u32, v: &[f32], start_version: u64) -> Message {
        let mut p = ParamMap::new();
        p.insert("w", Tensor::from_vec(vec![v.len()], v.to_vec()));
        Message::new(
            id,
            SERVER_ID,
            MessageKind::Updates,
            0,
            Payload::Update {
                params: p,
                start_version,
                n_samples: 10,
                n_steps: 4,
            },
        )
    }

    #[test]
    fn join_in_assigns_and_starts_when_full() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 3);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 3, &mut ctx);
        // 3 id assignments + 2 model broadcasts (concurrency 2)
        let kinds: Vec<MessageKind> = ctx.outbox.iter().map(|o| o.msg.kind).collect();
        assert_eq!(
            kinds
                .iter()
                .filter(|&&k| k == MessageKind::IdAssignment)
                .count(),
            3
        );
        assert_eq!(
            kinds
                .iter()
                .filter(|&&k| k == MessageKind::ModelParams)
                .count(),
            2
        );
        assert_eq!(s.state.busy.len(), 2);
    }

    #[test]
    fn all_received_aggregates_and_rebroadcasts() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        ctx.outbox.clear();
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        assert_eq!(s.state.version, 0, "must wait for all");
        s.handle(&update_msg(2, &[3.0, 3.0], 0), &mut ctx);
        assert_eq!(s.state.version, 1);
        assert_eq!(s.state.global.get("w").unwrap().data(), &[2.0, 2.0]);
        // next round broadcast happened
        let models = ctx
            .outbox
            .iter()
            .filter(|o| o.msg.kind == MessageKind::ModelParams)
            .count();
        assert_eq!(models, 2);
    }

    #[test]
    fn goal_achieved_aggregates_early() {
        let cfg = FlConfig {
            concurrency: 3,
            total_rounds: 5,
            rule: AggregationRule::GoalAchieved { goal: 2 },
            ..Default::default()
        };
        let mut s = make_server(cfg, 3);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 3, &mut ctx);
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        assert_eq!(s.state.version, 0);
        s.handle(&update_msg(2, &[3.0, 3.0], 0), &mut ctx);
        assert_eq!(s.state.version, 1, "goal of 2 reached");
    }

    #[test]
    fn stale_updates_are_dropped_beyond_tolerance() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 100,
            rule: AggregationRule::GoalAchieved { goal: 1 },
            staleness_tolerance: 0,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx); // agg -> version 1
        assert_eq!(s.state.version, 1);
        // straggler started from version 0: staleness 1 > tolerance 0
        s.handle(&update_msg(2, &[9.0, 9.0], 0), &mut ctx);
        assert_eq!(s.state.dropped_updates, 1);
        assert!(s.state.buffer.is_empty());
    }

    #[test]
    fn stale_updates_kept_within_tolerance() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 100,
            rule: AggregationRule::GoalAchieved { goal: 2 },
            staleness_tolerance: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        s.state.version = 3; // pretend three aggregations happened
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx); // staleness 3
        assert_eq!(s.state.buffer.len(), 1);
        assert_eq!(s.state.buffer[0].staleness, 3);
    }

    #[test]
    fn time_up_with_feedback_aggregates() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            rule: AggregationRule::TimeUp {
                budget_secs: 60.0,
                min_feedback: 1,
            },
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        assert_eq!(ctx.timers.len(), 1, "round start arms the budget timer");
        s.handle(&update_msg(1, &[2.0, 2.0], 0), &mut ctx);
        assert_eq!(s.state.version, 0, "time_up not yet fired");
        let mut ctx2 = Ctx::at(VirtualTime::from_secs(60.0));
        s.handle_timer(Condition::TimeUp, 0, &mut ctx2);
        assert_eq!(s.state.version, 1);
    }

    #[test]
    fn time_up_without_feedback_takes_remedial_measure() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            rule: AggregationRule::TimeUp {
                budget_secs: 60.0,
                min_feedback: 1,
            },
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        let mut ctx2 = Ctx::at(VirtualTime::from_secs(60.0));
        s.handle_timer(Condition::TimeUp, 0, &mut ctx2);
        assert_eq!(s.state.version, 0);
        assert_eq!(s.state.remedial_count, 1);
        assert_eq!(ctx2.timers.len(), 1, "budget extended");
    }

    #[test]
    fn stale_timer_is_ignored() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            rule: AggregationRule::TimeUp {
                budget_secs: 60.0,
                min_feedback: 1,
            },
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        s.state.round = 3; // round moved on
        let mut ctx2 = Ctx::at(VirtualTime::from_secs(60.0));
        s.handle_timer(Condition::TimeUp, 0, &mut ctx2);
        assert_eq!(s.state.remedial_count, 0);
        assert_eq!(s.state.version, 0);
    }

    #[test]
    fn after_receiving_hands_model_to_idle_client() {
        let cfg = FlConfig {
            concurrency: 1,
            total_rounds: 100,
            rule: AggregationRule::GoalAchieved { goal: 5 },
            broadcast: BroadcastManner::AfterReceiving,
            ..Default::default()
        };
        let mut s = make_server(cfg, 3);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 3, &mut ctx);
        ctx.outbox.clear();
        // reply must come from the client actually sampled
        let sampled = *s.state.busy.iter().next().expect("one client sampled");
        s.handle(&update_msg(sampled, &[1.0, 1.0], 0), &mut ctx);
        // no aggregation (goal 5), but exactly one new model handed out
        assert_eq!(s.state.version, 0);
        let models = ctx
            .outbox
            .iter()
            .filter(|o| o.msg.kind == MessageKind::ModelParams)
            .count();
        assert_eq!(models, 1);
        assert_eq!(s.state.busy.len(), 1, "concurrency maintained");
    }

    #[test]
    fn round_limit_terminates_with_finish() {
        let cfg = FlConfig {
            concurrency: 1,
            total_rounds: 1,
            ..Default::default()
        };
        let mut s = make_server(cfg, 1);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 1, &mut ctx);
        ctx.outbox.clear();
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        assert!(s.state.done);
        assert!(ctx.finished);
        let finishes = ctx
            .outbox
            .iter()
            .filter(|o| o.msg.kind == MessageKind::Finish)
            .count();
        assert_eq!(finishes, 1);
        assert!(s
            .state
            .finish_reason
            .as_deref()
            .unwrap()
            .contains("round limit"));
    }

    #[test]
    fn duplicate_join_in_does_not_restart_course() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        let outstanding_before = s.state.outstanding.clone();
        // a replayed join-in must not clear the round state
        let m = Message::new(1, SERVER_ID, MessageKind::JoinIn, 0, Payload::Empty);
        s.handle(&m, &mut ctx);
        assert_eq!(s.state.outstanding, outstanding_before);
        assert_eq!(s.state.roster.len(), 2);
    }

    #[test]
    fn duplicate_update_not_double_counted() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        // the same client replying twice must not satisfy all_received
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        assert_eq!(
            s.state.version, 0,
            "duplicate reply must not trigger aggregation"
        );
        s.handle(&update_msg(2, &[3.0, 3.0], 0), &mut ctx);
        assert_eq!(s.state.version, 1);
    }

    #[test]
    fn metrics_reports_recorded() {
        let cfg = FlConfig {
            concurrency: 1,
            total_rounds: 1,
            ..Default::default()
        };
        let mut s = make_server(cfg, 1);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        let m = Message::new(
            1,
            SERVER_ID,
            MessageKind::MetricsReport,
            0,
            Payload::Report {
                metrics: Metrics {
                    loss: 0.3,
                    accuracy: 0.8,
                    n: 10,
                },
            },
        );
        s.handle(&m, &mut ctx);
        assert_eq!(s.state.client_reports.len(), 1);
        assert!((s.state.client_reports[&1].accuracy - 0.8).abs() < 1e-6);
    }

    #[test]
    fn compressed_update_is_decompressed_before_aggregation() {
        let cfg = FlConfig {
            concurrency: 1,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 1);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 1, &mut ctx);
        let mut p = ParamMap::new();
        p.insert("w", Tensor::from_vec(vec![2], vec![4.0, -4.0]));
        let block = fs_compress::Identity.compress(&p);
        let m = Message::new(
            1,
            SERVER_ID,
            MessageKind::Updates,
            0,
            Payload::CompressedUpdate {
                block,
                start_version: 0,
                n_samples: 10,
                n_steps: 4,
            },
        );
        s.handle(&m, &mut ctx);
        assert_eq!(s.state.version, 1);
        assert_eq!(s.state.global.get("w").unwrap().data(), &[4.0, -4.0]);
    }

    #[test]
    fn delta_upload_reconstructed_from_history() {
        let cfg = FlConfig {
            concurrency: 1,
            total_rounds: 5,
            compression: crate::config::CompressionConfig {
                upload: Some(crate::config::CodecSpec::Identity),
                upload_delta: true,
                download: None,
            },
            ..Default::default()
        };
        let mut s = make_server(cfg, 1);
        assert!(s.state.track_history);
        assert!(s.state.global_history.contains_key(&0));
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 1, &mut ctx);
        // client-side: delta-encode an update of [5, 7] against global [0, 0]
        let mut codec = fs_compress::DeltaEncode::new(Box::new(fs_compress::Identity));
        codec.set_reference(&s.state.global, 0);
        let mut p = ParamMap::new();
        p.insert("w", Tensor::from_vec(vec![2], vec![5.0, 7.0]));
        let block = codec.compress(&p);
        assert!(block.delta);
        let m = Message::new(
            1,
            SERVER_ID,
            MessageKind::Updates,
            0,
            Payload::CompressedUpdate {
                block,
                start_version: 0,
                n_samples: 10,
                n_steps: 4,
            },
        );
        s.handle(&m, &mut ctx);
        assert_eq!(s.state.version, 1);
        assert_eq!(s.state.global.get("w").unwrap().data(), &[5.0, 7.0]);
        // history advanced to the new version and pruned nothing in-tolerance
        assert!(s.state.global_history.contains_key(&1));
    }

    #[test]
    fn delta_upload_with_pruned_reference_is_dropped() {
        let cfg = FlConfig {
            concurrency: 1,
            total_rounds: 100,
            rule: AggregationRule::GoalAchieved { goal: 1 },
            staleness_tolerance: 0,
            compression: crate::config::CompressionConfig {
                upload: Some(crate::config::CodecSpec::Identity),
                upload_delta: true,
                download: None,
            },
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx); // version -> 1, prunes v0
        assert_eq!(s.state.version, 1);
        assert!(!s.state.global_history.contains_key(&0));
        // straggler delta-encoded against the now-pruned version 0
        let mut codec = fs_compress::DeltaEncode::new(Box::new(fs_compress::Identity));
        codec.set_reference(&global(), 0);
        let mut p = ParamMap::new();
        p.insert("w", Tensor::from_vec(vec![2], vec![9.0, 9.0]));
        let m = Message::new(
            2,
            SERVER_ID,
            MessageKind::Updates,
            0,
            Payload::CompressedUpdate {
                block: codec.compress(&p),
                start_version: 0,
                n_samples: 10,
                n_steps: 4,
            },
        );
        s.handle(&m, &mut ctx);
        assert_eq!(s.state.dropped_updates, 1);
        assert_eq!(s.state.version, 1, "dropped update must not aggregate");
    }

    #[test]
    fn download_codec_broadcasts_compressed_models() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            compression: crate::config::CompressionConfig {
                upload: None,
                upload_delta: false,
                download: Some(crate::config::CodecSpec::UniformQuant { bits: 8 }),
            },
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        let blocks: Vec<_> = ctx
            .outbox
            .iter()
            .filter(|o| o.msg.kind == MessageKind::ModelParams)
            .map(|o| match &o.msg.payload {
                Payload::CompressedModel { block, version } => {
                    assert_eq!(*version, 0);
                    block.clone()
                }
                other => panic!("expected compressed broadcast, got {other:?}"),
            })
            .collect();
        assert_eq!(blocks.len(), 2);
        // the per-version cache guarantees identical bytes for every recipient
        assert_eq!(blocks[0], blocks[1]);
    }

    #[test]
    fn dropout_of_outstanding_client_completes_round_with_survivors() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        // client 1 replies; all_received still waits for client 2
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        assert_eq!(s.state.version, 0);
        // client 2 dies: the round must aggregate with client 1's update
        s.notify_dropout(2, &mut ctx);
        assert_eq!(s.state.version, 1, "survivors' round must complete");
        assert_eq!(s.state.dropouts, vec![2]);
        assert_eq!(s.state.roster, vec![1]);
    }

    #[test]
    fn dropout_of_whole_cohort_resamples_survivors() {
        let cfg = FlConfig {
            concurrency: 1,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        let sampled = *s.state.busy.iter().next().expect("one sampled");
        let survivor = if sampled == 1 { 2 } else { 1 };
        ctx.outbox.clear();
        s.notify_dropout(sampled, &mut ctx);
        // no update was in: the round restarts on the surviving client
        assert_eq!(s.state.version, 0);
        assert!(s.state.busy.contains(&survivor));
        let models = ctx
            .outbox
            .iter()
            .filter(|o| o.msg.kind == MessageKind::ModelParams)
            .count();
        assert_eq!(models, 1, "survivor resampled");
    }

    #[test]
    fn dropout_of_every_client_terminates_course() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        s.notify_dropout(1, &mut ctx);
        s.notify_dropout(2, &mut ctx);
        assert!(s.state.done);
        assert!(s
            .state
            .finish_reason
            .as_deref()
            .unwrap()
            .contains("dropped out"));
    }

    #[test]
    fn dropout_before_start_shrinks_expected_set() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 3);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx); // third expected client never joins
        assert_eq!(s.state.models_sent, 0, "course waits for client 3");
        s.notify_dropout(3, &mut ctx);
        assert_eq!(s.state.expected_clients, 2);
        assert!(s.state.models_sent > 0, "course starts with the joiners");
    }

    #[test]
    fn dropout_lowers_goal_to_what_survivors_can_reach() {
        let cfg = FlConfig {
            concurrency: 3,
            total_rounds: 5,
            rule: AggregationRule::GoalAchieved { goal: 3 },
            ..Default::default()
        };
        let mut s = make_server(cfg, 3);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 3, &mut ctx);
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        s.handle(&update_msg(2, &[1.0, 1.0], 0), &mut ctx);
        assert_eq!(s.state.version, 0, "goal 3 not reached");
        // client 3 dies: effective goal is now 2 and the buffer satisfies it
        s.notify_dropout(3, &mut ctx);
        assert_eq!(s.state.version, 1);
    }

    #[test]
    fn rejoin_voids_in_flight_work_and_readmits() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        // client 2's connection bounced: its in-flight update is gone, but it
        // rejoined fast enough that no dropout fired
        s.notify_rejoin(2, &mut ctx);
        assert_eq!(s.state.version, 1, "round completes without the bounce");
        assert_eq!(s.state.reconnects, 1);
        assert!(s.state.roster.contains(&2), "client 2 still in the course");
        assert!(s.state.dropouts.is_empty());
    }

    #[test]
    fn dropped_client_can_rejoin_the_roster() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        };
        let mut s = make_server(cfg, 2);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 2, &mut ctx);
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        s.notify_dropout(2, &mut ctx);
        assert_eq!(s.state.roster, vec![1]);
        s.notify_rejoin(2, &mut ctx);
        assert_eq!(s.state.roster, vec![1, 2]);
        assert_eq!(s.state.dropouts, vec![2], "history keeps the dropout");
        assert_eq!(s.state.reconnects, 1);
    }

    #[test]
    fn over_selection_samples_extra_clients() {
        let cfg = FlConfig {
            concurrency: 2,
            total_rounds: 5,
            ..Default::default()
        }
        .sync_over_selection(0.5);
        let mut s = make_server(cfg, 4);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        join_all(&mut s, 4, &mut ctx);
        // 2 * 1.5 = 3 clients sampled
        assert_eq!(s.state.busy.len(), 3);
        // goal is concurrency = 2: two fast replies aggregate
        s.handle(&update_msg(1, &[1.0, 1.0], 0), &mut ctx);
        s.handle(&update_msg(2, &[1.0, 1.0], 0), &mut ctx);
        assert_eq!(s.state.version, 1);
    }
}
