//! Quickstart: a vanilla synchronous FedAvg course in ~20 lines.
//!
//! Builds a Twitter-like sentiment federation (120 tiny clients), trains a
//! logistic regression with FedAvg for 20 rounds under virtual time, and
//! prints the learning curve, the effective `<event, handler>` pairs, and the
//! static-verification report (fs-verify, §3.6 / Appendix E) of the
//! constructed course.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedscope::core::config::FlConfig;
use fedscope::core::course::CourseBuilder;
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::tensor::model::logistic_regression;
use fedscope::tensor::optim::SgdConfig;

fn main() {
    // 1. data: 120 users, each with a handful of bag-of-words texts
    // seed 21 draws a topic pair separable enough to learn well under the
    // in-repo RNG (same choice as the fs-core course tests)
    let data = twitter_like(&TwitterConfig {
        num_clients: 120,
        seed: 21,
        ..Default::default()
    });
    let dim = data.input_dim();

    // 2. course configuration: vanilla synchronous FedAvg
    let cfg = FlConfig {
        total_rounds: 20,
        concurrency: 40,
        local_steps: 4,
        batch_size: 2,
        sgd: SgdConfig::with_lr(0.5),
        seed: 1,
        ..Default::default()
    };

    // 3. build and run
    let mut runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();

    // the handlers that take effect are recorded, as the paper requires
    println!("effective handlers (server and one line per client group):");
    let clients: Vec<&fedscope::core::Client> = runner.clients.values().collect();
    for line in fedscope::core::effective_handler_log(&runner.server, &clients) {
        println!("  {line}");
    }

    // static verification (§3.6 / Appendix E): completeness, dead handlers,
    // send/receive matching, config lints — all as FSVnnn diagnostics
    let verdict =
        fedscope::core::verify_assembled(&runner.server, &clients, Some(&runner.server.state.cfg));
    println!("\nstatic verification:\n{}", verdict.render_table());
    assert!(
        !verdict.has_errors(),
        "default FedAvg course must verify without errors"
    );
    drop(clients);

    // `run` repeats the verification as a preflight and would panic on errors;
    // `try_run` is the non-panicking variant.
    let report = runner.run();
    println!("\nlearning curve (virtual time -> accuracy):");
    for r in report.history.iter().step_by(4) {
        println!(
            "  round {:>3}  t={:>7.1}s  acc={:.3}",
            r.round, r.time_secs, r.metrics.accuracy
        );
    }
    println!(
        "\nfinished: {} after {:.1} virtual seconds",
        report.finish_reason, report.final_time_secs
    );
}
