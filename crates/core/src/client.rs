//! The client worker.
//!
//! A client is a registry of `<event, handler>` pairs over a [`ClientState`];
//! its training detail lives entirely in the [`Trainer`]. The default
//! handlers implement the behaviour of Example 3.2: on `receiving_models`,
//! train locally and return the update; on `receiving_eval_request` /
//! `Finish`, evaluate and report. Clients also raise the `performance_drop`
//! condition event when a received global model makes local validation worse
//! (§3.2), which personalization plug-ins can hook.

use crate::ctx::Ctx;
use crate::event::{Condition, Event};
use crate::registry::Registry;
use crate::trainer::Trainer;
use fs_compress::{decompress, Compressor};
use fs_net::{Message, MessageKind, ParticipantId, Payload, SERVER_ID};
use fs_tensor::model::Metrics;
use fs_tensor::ParamMap;

/// Mutable client state shared by all handlers.
pub struct ClientState {
    /// This client's id (assigned by the course builder; confirmed by the
    /// server's `IdAssignment`).
    pub id: ParticipantId,
    /// The local trainer (personalization lives here).
    pub trainer: Box<dyn Trainer>,
    /// Rounds of local training performed.
    pub rounds_trained: u64,
    /// Last validation metrics observed before local training.
    pub last_val: Option<Metrics>,
    /// Times the `performance_drop` condition fired.
    pub perf_drop_count: u64,
    /// Whether to evaluate the incoming global model and raise
    /// `performance_drop` (costs one validation pass per round).
    pub detect_perf_drop: bool,
    /// Upload codec: when set, updates leave as `Payload::CompressedUpdate`.
    /// Per-client instance — error-feedback residuals and delta references
    /// belong to this sender only.
    pub compressor: Option<Box<dyn Compressor>>,
    /// Set once `Finish` is handled.
    pub done: bool,
    /// Final test metrics reported at course end.
    pub final_test: Option<Metrics>,
}

/// Incorporates a shipped global model (dense or compressed) into the
/// trainer, if the payload carries one.
fn incorporate_shipped_model(state: &mut ClientState, payload: &Payload) {
    match payload {
        Payload::Model { params, .. } => state.trainer.incorporate(params),
        Payload::CompressedModel { block, .. } => match decompress(block, None) {
            Ok(params) => state.trainer.incorporate(&params),
            Err(e) => debug_assert!(false, "shipped model decompress failed: {e}"),
        },
        _ => {}
    }
}

/// A client participant: state + handler registry.
pub struct Client {
    /// Handler-visible state.
    pub state: ClientState,
    registry: Registry<ClientState>,
}

/// A restorable image of a client's mutable state, taken just before a
/// speculative dispatch on a worker thread (`parallelism > 1`). If the
/// speculation is recalled — an out-of-order delivery or a simulated device
/// crash invalidates it — [`Client::restore`] rewinds the client to this
/// image and the message is re-dispatched serially at its proper queue
/// position, reproducing serial execution bit for bit.
///
/// Handler closures themselves are not snapshotted: the default handlers
/// capture nothing, and custom handlers that capture external mutable state
/// should run with `parallelism = 1` (the default).
pub struct ClientSnapshot {
    trainer: Box<dyn Trainer>,
    rounds_trained: u64,
    last_val: Option<Metrics>,
    perf_drop_count: u64,
    detect_perf_drop: bool,
    compressor: Option<Box<dyn Compressor>>,
    done: bool,
    final_test: Option<Metrics>,
    registry_log: (std::collections::BTreeSet<(Event, Event)>, usize),
}

impl Client {
    /// Creates a client with the default FedAvg-style handlers.
    pub fn new(id: ParticipantId, trainer: Box<dyn Trainer>) -> Self {
        assert!(id != SERVER_ID, "client id 0 is reserved for the server");
        let state = ClientState {
            id,
            trainer,
            rounds_trained: 0,
            last_val: None,
            perf_drop_count: 0,
            detect_perf_drop: false,
            compressor: None,
            done: false,
            final_test: None,
        };
        let mut c = Self {
            state,
            registry: Registry::new(),
        };
        c.install_default_handlers();
        c
    }

    /// Access to the handler registry for customization (§3.6).
    pub fn registry_mut(&mut self) -> &mut Registry<ClientState> {
        &mut self.registry
    }

    /// The effective `<event, handler>` pairs.
    pub fn effective_handlers(&self) -> Vec<(Event, &str)> {
        self.registry.effective_handlers()
    }

    /// Message-flow edges for the completeness checker.
    pub fn flow_edges(&self) -> Vec<(Event, Event)> {
        self.registry.flow_edges()
    }

    /// Registration-conflict warnings.
    pub fn warnings(&self) -> &[String] {
        self.registry.warnings()
    }

    /// Emit-conformance violations observed during dispatch.
    pub fn violations(&self) -> &[String] {
        self.registry.violations()
    }

    /// Handler specs for the static verifier.
    pub fn specs(&self) -> Vec<fs_verify::HandlerSpec> {
        self.registry.specs()
    }

    /// Initial action: ask to join the FL course.
    pub fn start(&mut self, ctx: &mut Ctx) {
        ctx.send(Message::new(
            self.state.id,
            SERVER_ID,
            MessageKind::JoinIn,
            0,
            Payload::Empty,
        ));
    }

    /// Attempts to capture a restorable image of this client's mutable
    /// state. Returns `None` when the trainer cannot be duplicated
    /// ([`Trainer::try_clone`]); such clients are never speculated and always
    /// run serially.
    pub fn snapshot(&self) -> Option<ClientSnapshot> {
        let trainer = self.state.trainer.try_clone()?;
        Some(ClientSnapshot {
            trainer,
            rounds_trained: self.state.rounds_trained,
            last_val: self.state.last_val,
            perf_drop_count: self.state.perf_drop_count,
            detect_perf_drop: self.state.detect_perf_drop,
            compressor: self.state.compressor.as_ref().map(|c| c.clone_box()),
            done: self.state.done,
            final_test: self.state.final_test,
            registry_log: self.registry.log_snapshot(),
        })
    }

    /// Rewinds this client to a state captured by [`Client::snapshot`].
    pub fn restore(&mut self, snap: ClientSnapshot) {
        self.state.trainer = snap.trainer;
        self.state.rounds_trained = snap.rounds_trained;
        self.state.last_val = snap.last_val;
        self.state.perf_drop_count = snap.perf_drop_count;
        self.state.detect_perf_drop = snap.detect_perf_drop;
        self.state.compressor = snap.compressor;
        self.state.done = snap.done;
        self.state.final_test = snap.final_test;
        self.registry.log_restore(snap.registry_log);
    }

    /// Dispatches a message event, then drains any raised condition events.
    pub fn handle(&mut self, msg: &Message, ctx: &mut Ctx) {
        self.registry
            .dispatch(&mut self.state, Event::Message(msg.kind), msg, ctx);
        while let Some(cond) = ctx.raised.pop_front() {
            self.registry
                .dispatch(&mut self.state, Event::Condition(cond), msg, ctx);
        }
        if self.state.done {
            ctx.finished = true;
        }
    }

    fn install_default_handlers(&mut self) {
        // receiving_id_assignment: confirm identity.
        self.registry.register(
            Event::Message(MessageKind::IdAssignment),
            "confirm_id",
            vec![],
            Box::new(|state, msg, _ctx| {
                debug_assert_eq!(msg.receiver, state.id, "id assignment mismatch");
            }),
        );

        // receiving_models: train on local data, return the update (§3.2).
        self.registry.register(
            Event::Message(MessageKind::ModelParams),
            "local_training",
            vec![
                Event::Message(MessageKind::Updates),
                Event::Condition(Condition::PerformanceDrop),
            ],
            Box::new(|state, msg, ctx| {
                let decoded: ParamMap;
                let (params, version): (&ParamMap, u64) = match &msg.payload {
                    Payload::Model { params, version } => (params, *version),
                    Payload::CompressedModel { block, version } => {
                        // broadcasts are never delta-encoded (a sampled client
                        // may have missed any number of earlier models), so no
                        // reference is needed
                        match decompress(block, None) {
                            Ok(p) => {
                                decoded = p;
                                (&decoded, *version)
                            }
                            Err(e) => {
                                debug_assert!(false, "broadcast decompress failed: {e}");
                                return;
                            }
                        }
                    }
                    other => {
                        debug_assert!(false, "ModelParams carried {other:?}");
                        return;
                    }
                };
                if state.detect_perf_drop {
                    state.trainer.incorporate(params);
                    let val = state.trainer.evaluate_val();
                    if let Some(prev) = state.last_val {
                        if val.n > 0 && val.accuracy + 1e-6 < prev.accuracy {
                            ctx.raise(Condition::PerformanceDrop);
                        }
                    }
                    state.last_val = Some(val);
                }
                let update = state.trainer.local_train(params, msg.round);
                state.rounds_trained += 1;
                let payload = match state.compressor.as_mut() {
                    Some(codec) => {
                        // the broadcast just received is the delta reference;
                        // the server holds the same model under `version`
                        codec.set_reference(params, version);
                        Payload::CompressedUpdate {
                            block: codec.compress(&update.params),
                            start_version: version,
                            n_samples: update.n_samples,
                            n_steps: update.n_steps,
                        }
                    }
                    None => Payload::Update {
                        params: update.params,
                        start_version: version,
                        n_samples: update.n_samples,
                        n_steps: update.n_steps,
                    },
                };
                let reply = Message::new(
                    state.id,
                    SERVER_ID,
                    MessageKind::Updates,
                    msg.round,
                    payload,
                );
                ctx.send_after_compute(reply, update.examples_processed as f64);
            }),
        );

        // performance_drop: default behaviour just counts; personalization
        // plug-ins overwrite this handler.
        self.registry.register(
            Event::Condition(Condition::PerformanceDrop),
            "count_performance_drop",
            vec![],
            Box::new(|state, _msg, _ctx| {
                state.perf_drop_count += 1;
            }),
        );

        // receiving_eval_request: evaluate the shipped model locally, report.
        // Registered as auxiliary: no default server handler emits
        // EvalRequest (it is operator/extension driven), and the verifier
        // must not flag the responder as unreachable.
        self.registry.register_aux(
            Event::Message(MessageKind::EvalRequest),
            "evaluate_and_report",
            vec![Event::Message(MessageKind::MetricsReport)],
            Box::new(|state, msg, ctx| {
                incorporate_shipped_model(state, &msg.payload);
                let metrics = state.trainer.evaluate_test();
                ctx.send(Message::new(
                    state.id,
                    SERVER_ID,
                    MessageKind::MetricsReport,
                    msg.round,
                    Payload::Report { metrics },
                ));
            }),
        );

        // receiving_finish: incorporate the final global model, report final
        // test metrics, stop.
        self.registry.register(
            Event::Message(MessageKind::Finish),
            "finalize",
            vec![Event::Message(MessageKind::MetricsReport)],
            Box::new(|state, msg, ctx| {
                incorporate_shipped_model(state, &msg.payload);
                let metrics = state.trainer.evaluate_test();
                state.final_test = Some(metrics);
                ctx.send(Message::new(
                    state.id,
                    SERVER_ID,
                    MessageKind::MetricsReport,
                    msg.round,
                    Payload::Report { metrics },
                ));
                state.done = true;
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{share_all, LocalTrainer, TrainConfig};
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_sim::VirtualTime;
    use fs_tensor::model::{logistic_regression, Model};
    use fs_tensor::ParamMap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_client(id: ParticipantId) -> (Client, ParamMap) {
        let d = twitter_like(&TwitterConfig {
            num_clients: 2,
            per_client: 20,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let model = logistic_regression(d.input_dim(), 2, &mut rng);
        let global = model.get_params();
        let trainer = LocalTrainer::new(
            Box::new(model),
            d.clients[(id - 1) as usize].clone(),
            TrainConfig::default(),
            share_all(),
            id as u64,
        );
        (Client::new(id, Box::new(trainer)), global)
    }

    #[test]
    fn start_sends_join_in() {
        let (mut c, _) = make_client(1);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        c.start(&mut ctx);
        assert_eq!(ctx.outbox.len(), 1);
        assert_eq!(ctx.outbox[0].msg.kind, MessageKind::JoinIn);
        assert_eq!(ctx.outbox[0].msg.receiver, SERVER_ID);
    }

    #[test]
    fn model_params_triggers_training_and_update() {
        let (mut c, global) = make_client(1);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        let msg = Message::new(
            SERVER_ID,
            1,
            MessageKind::ModelParams,
            0,
            Payload::Model {
                params: global,
                version: 7,
            },
        );
        c.handle(&msg, &mut ctx);
        assert_eq!(c.state.rounds_trained, 1);
        assert_eq!(ctx.outbox.len(), 1);
        let out = &ctx.outbox[0];
        assert_eq!(out.msg.kind, MessageKind::Updates);
        assert!(out.compute_work > 0.0, "training must report compute work");
        match &out.msg.payload {
            Payload::Update {
                start_version,
                n_samples,
                ..
            } => {
                assert_eq!(*start_version, 7);
                assert!(*n_samples > 0);
            }
            other => panic!("wrong payload {other:?}"),
        }
    }

    #[test]
    fn finish_reports_final_metrics_and_stops() {
        let (mut c, global) = make_client(1);
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        let msg = Message::new(
            SERVER_ID,
            1,
            MessageKind::Finish,
            3,
            Payload::Model {
                params: global,
                version: 3,
            },
        );
        c.handle(&msg, &mut ctx);
        assert!(c.state.done);
        assert!(ctx.finished);
        assert!(c.state.final_test.is_some());
        assert_eq!(ctx.outbox[0].msg.kind, MessageKind::MetricsReport);
    }

    #[test]
    fn perf_drop_condition_counts_when_enabled() {
        let (mut c, global) = make_client(1);
        c.state.detect_perf_drop = true;
        // seed a high last_val so any real model looks like a drop
        c.state.last_val = Some(Metrics {
            loss: 0.0,
            accuracy: 1.1,
            n: 1,
        });
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        let msg = Message::new(
            SERVER_ID,
            1,
            MessageKind::ModelParams,
            0,
            Payload::Model {
                params: global,
                version: 0,
            },
        );
        c.handle(&msg, &mut ctx);
        assert_eq!(c.state.perf_drop_count, 1);
    }

    #[test]
    fn custom_handler_overrides_default() {
        let (mut c, global) = make_client(1);
        c.registry_mut().register(
            Event::Message(MessageKind::ModelParams),
            "noop",
            vec![],
            Box::new(|_, _, _| {}),
        );
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        let msg = Message::new(
            SERVER_ID,
            1,
            MessageKind::ModelParams,
            0,
            Payload::Model {
                params: global,
                version: 0,
            },
        );
        c.handle(&msg, &mut ctx);
        assert!(ctx.outbox.is_empty(), "override should suppress the update");
        assert_eq!(c.state.rounds_trained, 0);
    }
}
