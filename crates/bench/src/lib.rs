//! `fs-bench` — the experiment harness.
//!
//! One binary per table/figure of the paper's evaluation (§5, Appendices G–I)
//! lives in `src/bin/`; criterion microbenchmarks live in `benches/`. This
//! library holds what they share:
//!
//! * [`workloads`] — the three benchmark setups standing in for FEMNIST,
//!   CIFAR-10, and Twitter (synthetic data, same heterogeneity structure,
//!   same model families);
//! * [`strategies`] — the named strategy grid of Table 1 / Figure 17
//!   (`Sync-vanilla`, `Sync-OS`, `Async-<Event>-<Manner>-<Sampler>`);
//! * [`args`] — the shared `--seed/--rounds/--strategies/--workloads/--quick`
//!   command-line vocabulary;
//! * [`output`] — human-readable tables plus machine-readable JSON dumped
//!   under `results/`.
//!
//! Absolute numbers differ from the paper (different hardware model, data,
//! and scale); the *shape* of each result — who wins, by roughly what factor,
//! where the crossovers sit — is what `EXPERIMENTS.md` tracks.

pub mod args;
pub mod output;
pub mod strategies;
pub mod sys;
pub mod workloads;
