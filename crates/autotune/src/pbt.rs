//! Population-based training (PBT).
//!
//! A population of configurations trains in parallel intervals; after each
//! interval the bottom-quantile members *exploit* (copy the checkpoint and
//! configuration of a top performer) and *explore* (perturb the copied
//! configuration). FederatedScope implements PBT on its checkpoint mechanism
//! (§4.3); so do we.

use crate::objective::{Checkpoint, Objective, TrialResult};
use crate::rs::{BestSeen, SearchOutcome};
use crate::space::{Config, SearchSpace};
use rand::Rng;

/// PBT settings.
#[derive(Clone, Copy, Debug)]
pub struct PbtConfig {
    /// Population size.
    pub population: usize,
    /// Training rounds per interval.
    pub interval: u64,
    /// Number of exploit/explore cycles.
    pub cycles: usize,
    /// Fraction of the population replaced each cycle.
    pub replace_frac: f64,
}

impl Default for PbtConfig {
    fn default() -> Self {
        Self {
            population: 8,
            interval: 2,
            cycles: 4,
            replace_frac: 0.25,
        }
    }
}

/// Runs PBT, returning the best member.
pub fn pbt(
    space: &SearchSpace,
    objective: &mut dyn Objective,
    cfg: PbtConfig,
    rng: &mut impl Rng,
) -> SearchOutcome {
    assert!(cfg.population >= 2, "population must be >= 2");
    let mut members: Vec<(Config, Option<Checkpoint>, TrialResult)> = (0..cfg.population)
        .map(|_| {
            (
                space.sample(rng),
                None,
                TrialResult {
                    val_loss: f64::INFINITY,
                    test_accuracy: 0.0,
                    cost: 0,
                },
            )
        })
        .collect();
    let mut trace = Vec::new();
    let mut spent = 0u64;
    let mut best_seen = f64::INFINITY;
    for _ in 0..cfg.cycles {
        for (c, ck, res) in &mut members {
            let (r, new_ck) = objective.run(c, cfg.interval, ck.as_ref());
            spent += r.cost;
            best_seen = best_seen.min(r.val_loss);
            *res = r;
            *ck = Some(new_ck);
            trace.push(BestSeen {
                cumulative_cost: spent,
                best_val_loss: best_seen,
            });
        }
        // exploit + explore
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by(|&a, &b| {
            members[a]
                .2
                .val_loss
                .partial_cmp(&members[b].2.val_loss)
                .expect("finite")
        });
        let n_replace = ((members.len() as f64) * cfg.replace_frac).round().max(1.0) as usize;
        for i in 0..n_replace {
            let loser = order[members.len() - 1 - i];
            let winner = order[i % (members.len() - n_replace).max(1)];
            let (w_cfg, w_ck) = (members[winner].0.clone(), members[winner].1.clone());
            members[loser].0 = space.perturb(&w_cfg, rng);
            members[loser].1 = w_ck;
        }
    }
    let best = members
        .into_iter()
        .min_by(|a, b| a.2.val_loss.partial_cmp(&b.2.val_loss).expect("finite"))
        .expect("non-empty population");
    SearchOutcome {
        best_config: best.0,
        best_result: best.2,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::QuadraticObjective;
    use crate::space::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pbt_improves_over_cycles() {
        let space = SearchSpace::new().with(
            "lr",
            Param::Float {
                lo: 0.01,
                hi: 1.0,
                log: false,
            },
        );
        let mut obj = QuadraticObjective;
        let mut rng = StdRng::seed_from_u64(7);
        let out = pbt(
            &space,
            &mut obj,
            PbtConfig {
                population: 8,
                interval: 2,
                cycles: 6,
                replace_frac: 0.25,
            },
            &mut rng,
        );
        assert!(
            (out.best_config["lr"] - 0.3).abs() < 0.3,
            "best {}",
            out.best_config["lr"]
        );
        // checkpoints accumulate budget: final cost trace is long
        assert_eq!(out.trace.len(), 8 * 6);
        let first = out.trace.first().unwrap().best_val_loss;
        let last = out.trace.last().unwrap().best_val_loss;
        assert!(last <= first);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        let space = SearchSpace::new().with(
            "lr",
            Param::Float {
                lo: 0.01,
                hi: 1.0,
                log: false,
            },
        );
        let mut obj = QuadraticObjective;
        let mut rng = StdRng::seed_from_u64(0);
        let _ = pbt(
            &space,
            &mut obj,
            PbtConfig {
                population: 1,
                ..Default::default()
            },
            &mut rng,
        );
    }
}
