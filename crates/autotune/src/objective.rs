//! The black-box objective HPO methods optimize.
//!
//! The paper's unified interface (§4.3): Bayesian-optimization-style methods
//! evaluate a *complete* FL course, multi-fidelity methods evaluate *a few
//! rounds* and resume from checkpoints, and Federated-HPO methods reach into
//! client-wise updates. [`Objective`] covers the first two through the
//! `budget`/`checkpoint` arguments; FedEx composes with it through the
//! trainer hook in [`crate::fedex`].

use crate::space::Config;
use fs_core::config::FlConfig;
use fs_core::course::CourseBuilder;
use fs_data::FedDataset;
use fs_tensor::model::Model;
use fs_tensor::optim::SgdConfig;
use fs_tensor::ParamMap;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Result of evaluating one configuration at some fidelity.
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// Validation loss (the optimization target; lower is better).
    pub val_loss: f64,
    /// Test accuracy of the evaluated model (reported, not optimized).
    pub test_accuracy: f64,
    /// Rounds actually spent.
    pub cost: u64,
}

/// A resumable snapshot of a training course (the paper's checkpoint
/// mechanism for multi-fidelity HPO).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Global model parameters at snapshot time.
    pub global: ParamMap,
    /// Rounds completed so far.
    pub rounds_done: u64,
}

/// A black-box, budget-aware objective.
pub trait Objective {
    /// Runs `budget` additional rounds under `cfg`, optionally resuming from
    /// `from`, and returns the result plus a checkpoint for later resumption.
    fn run(
        &mut self,
        cfg: &Config,
        budget: u64,
        from: Option<&Checkpoint>,
    ) -> (TrialResult, Checkpoint);
}

/// A thread-safe model factory shared across trials.
pub type SharedModelFactory = Arc<dyn Fn(&mut StdRng) -> Box<dyn Model> + Send + Sync>;

/// The standard FL-course objective: tunes `lr` (and optionally
/// `local_steps`, `batch`, `momentum`, `weight_decay`) of FedAvg on a given
/// dataset.
pub struct FlObjective {
    dataset: FedDataset,
    model_factory: SharedModelFactory,
    base: FlConfig,
    /// Per-trial trainer hook (used by FedEx); receives the trial config.
    pub trainer_hook: Option<crate::fedex::FedExHook>,
}

impl FlObjective {
    /// Creates the objective.
    pub fn new(dataset: FedDataset, model_factory: SharedModelFactory, base: FlConfig) -> Self {
        Self {
            dataset,
            model_factory,
            base,
            trainer_hook: None,
        }
    }

    /// Translates a sampled [`Config`] into the course configuration.
    pub fn apply_config(base: &FlConfig, cfg: &Config) -> FlConfig {
        let mut out = base.clone();
        if let Some(&lr) = cfg.get("lr") {
            out.sgd = SgdConfig {
                lr: lr as f32,
                ..out.sgd
            };
        }
        if let Some(&m) = cfg.get("momentum") {
            out.sgd.momentum = m as f32;
        }
        if let Some(&wd) = cfg.get("weight_decay") {
            out.sgd.weight_decay = wd as f32;
        }
        if let Some(&s) = cfg.get("local_steps") {
            out.local_steps = (s.round() as usize).max(1);
        }
        if let Some(&b) = cfg.get("batch") {
            out.batch_size = (b.round() as usize).max(1);
        }
        out
    }
}

impl Objective for FlObjective {
    fn run(
        &mut self,
        cfg: &Config,
        budget: u64,
        from: Option<&Checkpoint>,
    ) -> (TrialResult, Checkpoint) {
        let mut fl_cfg = Self::apply_config(&self.base, cfg);
        fl_cfg.total_rounds = budget.max(1);
        fl_cfg.eval_every = 1;
        let factory = self.model_factory.clone();
        let mut builder = CourseBuilder::new(
            self.dataset.clone(),
            Box::new(move |rng| factory(rng)),
            fl_cfg,
        );
        if let Some(hook) = &self.trainer_hook {
            builder = builder.trainer_factory(hook.make_trainer_factory());
        }
        let mut runner = builder.build();
        // resume: load the checkpointed global model
        let mut rounds_before = 0;
        if let Some(ck) = from {
            runner.server.state.global.merge_from(&ck.global);
            rounds_before = ck.rounds_done;
        }
        let report = runner.run();
        let last = report.history.last();
        let (val_loss, test_accuracy) = match last {
            Some(r) => (r.metrics.loss as f64, r.metrics.accuracy as f64),
            None => (f64::INFINITY, 0.0),
        };
        let result = TrialResult {
            val_loss,
            test_accuracy,
            cost: report.rounds,
        };
        let ck = Checkpoint {
            global: runner.server.state.global.clone(),
            rounds_done: rounds_before + report.rounds,
        };
        (result, ck)
    }
}

/// A cheap synthetic objective for unit tests: quadratic in `lr` with optimum
/// at `lr = 0.3`, improving with budget.
pub struct QuadraticObjective;

impl Objective for QuadraticObjective {
    fn run(
        &mut self,
        cfg: &Config,
        budget: u64,
        from: Option<&Checkpoint>,
    ) -> (TrialResult, Checkpoint) {
        let lr = cfg.get("lr").copied().unwrap_or(0.0);
        let done = from.map_or(0, |c| c.rounds_done);
        let total = done + budget;
        let base = (lr - 0.3).powi(2);
        let val_loss = base + 1.0 / (total as f64 + 1.0);
        let result = TrialResult {
            val_loss,
            test_accuracy: 1.0 - val_loss,
            cost: budget,
        };
        let ck = Checkpoint {
            global: ParamMap::new(),
            rounds_done: total,
        };
        (result, ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Param, SearchSpace};
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_tensor::model::logistic_regression;
    use rand::SeedableRng;

    #[test]
    fn apply_config_maps_fields() {
        let base = FlConfig::default();
        let mut cfg = Config::new();
        cfg.insert("lr".into(), 0.25);
        cfg.insert("local_steps".into(), 6.4);
        cfg.insert("batch".into(), 16.0);
        let out = FlObjective::apply_config(&base, &cfg);
        assert!((out.sgd.lr - 0.25).abs() < 1e-6);
        assert_eq!(out.local_steps, 6);
        assert_eq!(out.batch_size, 16);
    }

    #[test]
    fn fl_objective_runs_and_checkpoints() {
        let data = twitter_like(&TwitterConfig {
            num_clients: 8,
            per_client: 12,
            ..Default::default()
        });
        let dim = data.input_dim();
        let base = FlConfig {
            concurrency: 4,
            ..Default::default()
        };
        let mut obj = FlObjective::new(
            data,
            Arc::new(move |rng: &mut StdRng| {
                Box::new(logistic_regression(dim, 2, rng)) as Box<dyn Model>
            }),
            base,
        );
        let space = SearchSpace::new().with(
            "lr",
            Param::Float {
                lo: 0.1,
                hi: 1.0,
                log: true,
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = space.sample(&mut rng);
        let (r1, ck1) = obj.run(&cfg, 3, None);
        assert_eq!(r1.cost, 3);
        assert_eq!(ck1.rounds_done, 3);
        assert!(r1.val_loss.is_finite());
        // resume accumulates rounds
        let (_, ck2) = obj.run(&cfg, 2, Some(&ck1));
        assert_eq!(ck2.rounds_done, 5);
    }

    #[test]
    fn quadratic_objective_optimum() {
        let mut obj = QuadraticObjective;
        let mk = |lr: f64| {
            let mut c = Config::new();
            c.insert("lr".into(), lr);
            c
        };
        let (good, _) = obj.run(&mk(0.3), 10, None);
        let (bad, _) = obj.run(&mk(0.9), 10, None);
        assert!(good.val_loss < bad.val_loss);
    }
}
