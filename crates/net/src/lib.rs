//! `fs-net` — messages, events, the neutral wire format, backends, the bus.
//!
//! FederatedScope abstracts all exchanged information as *messages* and makes
//! cross-backend FL possible through *message translation* (§3.5): every
//! participant encodes backend-native tensors into a pre-agreed
//! backend-independent format before sharing, and decodes received messages
//! into its own representation. This crate provides:
//!
//! * [`message`] — the typed [`message::Message`] envelope (sender, receiver,
//!   kind, round, virtual timestamp, payload);
//! * [`event`] — the event vocabulary (§3.2): message-passing events wrap a
//!   [`message::MessageKind`]; condition-checking events name a predicate.
//!   Living here (below both `fs-core` and `fs-verify`) lets the engine and
//!   the static verifier share it without a dependency cycle;
//! * [`wire`] — the neutral binary codec for parameters and whole messages
//!   (the *encoding*/*decoding* procedures of §3.5), built on `bytes`;
//! * [`backend`] — the [`backend::Backend`] trait plus two concrete parameter
//!   stores with different native layouts (row-major `f32`, "torch-like", and
//!   column-major `f64`, "tf-like") that interoperate only through the wire
//!   format, exercising the paper's cross-backend path for real;
//! * [`bus`] — an in-process transport (crossbeam channels) used by the
//!   distributed runner, where the same worker code runs on real threads;
//! * [`tcp`] — the same wire frames over real sockets (`std::net`), so
//!   participants can run as separate processes.

// Library code must surface malformed input as typed errors, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod backend;
pub mod bus;
pub mod event;
pub mod fault;
pub mod message;
pub mod tcp;
pub mod wire;

pub use event::{Condition, Event};
pub use fault::{FaultAction, FaultPlan, FaultSpec, FaultState, SendOutcome};
pub use message::{Message, MessageKind, ParticipantId, Payload, SERVER_ID};
