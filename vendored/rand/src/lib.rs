//! Minimal in-repo stand-in for the `rand` crate.
//!
//! The build environment has no network access and an empty cargo registry,
//! so the workspace vendors the small API surface it actually uses:
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64), [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`seq::SliceRandom::shuffle`],
//! and [`thread_rng`]. Streams are deterministic in the seed, which is all
//! the FL courses rely on; they do not need to match upstream `rand` bit for
//! bit.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits (the stand-in
/// for `rand::distributions::Standard`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias worth caring about
/// (widening-multiply method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::from_rng(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferrable type (`rng.gen::<f32>()` is uniform in
    /// `[0, 1)`; integers use all 64 bits).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws uniformly from a range (`0..n`, `lo..=hi`, float or integer).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete RNGs.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    ///
    /// Not the upstream `StdRng` (ChaCha12); deterministic in the seed, which
    /// is the property the FL courses and tests depend on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a nondeterministically seeded [`rngs::StdRng`] (the stand-in for
/// `rand::thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    let stack_entropy = &nanos as *const u64 as u64;
    rngs::StdRng::seed_from_u64(nanos ^ stack_entropy.rotate_left(32))
}

pub mod seq {
    //! Slice utilities.

    use super::{uniform_below, Rng};

    /// Random slice operations (only `shuffle` is provided).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&w));
            let u = rng.gen_range(5u64..=5);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }
}
