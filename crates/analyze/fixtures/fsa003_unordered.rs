// FSA003 fixture: order-sensitive containers in a deterministic crate.
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.len()
}
