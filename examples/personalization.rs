//! Personalization (§3.4.1): FedBN and Ditto vs vanilla FedAvg under
//! writer-style feature skew.
//!
//! ```text
//! cargo run --release --example personalization
//! ```

use fedscope::core::config::FlConfig;
use fedscope::core::course::CourseBuilder;
use fedscope::core::trainer::{share_all, TrainConfig};
use fedscope::core::StandaloneRunner;
use fedscope::data::synth::{femnist_like, ImageConfig};
use fedscope::personalize::ditto::DittoTrainer;
use fedscope::personalize::fedbn::fedbn_share_filter;
use fedscope::tensor::model::mlp_bn;
use fedscope::tensor::optim::SgdConfig;

fn summarize(name: &str, runner: &StandaloneRunner) {
    let accs: Vec<f32> = runner
        .server
        .state
        .client_reports
        .values()
        .map(|m| m.accuracy)
        .collect();
    let n = accs.len() as f32;
    let mean = accs.iter().sum::<f32>() / n;
    let std = (accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n).sqrt();
    let worst = accs.iter().cloned().fold(f32::INFINITY, f32::min);
    println!("{name:<8} mean={mean:.3}  worst client={worst:.3}  sigma={std:.3}");
}

fn main() {
    let data = femnist_like(&ImageConfig {
        num_clients: 24,
        per_client: 60,
        img: 8,
        num_classes: 10,
        noise: 0.45,
        ..Default::default()
    })
    .flattened();
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 30,
        concurrency: 24,
        local_steps: 6,
        batch_size: 16,
        sgd: SgdConfig::with_lr(0.15),
        eval_every: 10,
        seed: 3,
        ..Default::default()
    };

    // FedAvg: one global model for everyone
    let mut fedavg = CourseBuilder::new(
        data.clone(),
        Box::new(move |rng| Box::new(mlp_bn(&[dim, 48, 10], rng))),
        cfg.clone(),
    )
    .build();
    fedavg.run();
    summarize("FedAvg", &fedavg);

    // FedBN: identical course, one-line change — don't share bn.* keys
    let mut fedbn = CourseBuilder::new(
        data.clone(),
        Box::new(move |rng| Box::new(mlp_bn(&[dim, 48, 10], rng))),
        cfg.clone(),
    )
    .share_filter(fedbn_share_filter())
    .build();
    fedbn.run();
    summarize("FedBN", &fedbn);

    // Ditto: a personal model per client with a proximal pull to the global
    let mut ditto = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(mlp_bn(&[dim, 48, 10], rng))),
        cfg,
    )
    .trainer_factory(Box::new(|i, model, split, cfg| {
        Box::new(DittoTrainer::new(
            model,
            split,
            TrainConfig {
                local_steps: cfg.local_steps,
                batch_size: cfg.batch_size,
                sgd: cfg.sgd,
            },
            0.5,
            share_all(),
            cfg.seed ^ (i as u64 + 1),
        ))
    }))
    .build();
    ditto.run();
    summarize("Ditto", &ditto);
}
