//! Additive secret sharing for secure aggregation (§4.1).
//!
//! The paper "develops a secret sharing mechanism for FedAvg": each client
//! splits its update vector into `n` additive shares over `Z_{2^64}` (all but
//! one share uniformly random), hands one share to every peer, and the server
//! only ever sees per-coordinate share *sums* — which reconstruct the sum of
//! the clients' values while each individual value stays information-
//! theoretically hidden.
//!
//! Floats enter the ring through two's-complement fixed-point encoding, so
//! negative values and wrap-around cancellation behave correctly.

use fs_tensor::ParamMap;
use rand::Rng;

/// Fixed-point scale used when sharing floats.
pub const SHARE_SCALE: f64 = 65_536.0;

/// Encodes a float into the `Z_{2^64}` ring (two's complement fixed point).
pub fn encode_fixed(v: f32) -> u64 {
    let scaled = (v as f64 * SHARE_SCALE).round() as i64;
    scaled as u64
}

/// Decodes a ring element back to a float.
pub fn decode_fixed(v: u64) -> f32 {
    (v as i64) as f64 as f32 / SHARE_SCALE as f32
}

/// Splits `values` into `n` additive share vectors: the shares of each
/// coordinate sum (wrapping) to the encoded value.
pub fn share(values: &[f32], n: usize, rng: &mut impl Rng) -> Vec<Vec<u64>> {
    assert!(n >= 1, "need at least one share");
    let mut shares = vec![vec![0u64; values.len()]; n];
    for (i, &v) in values.iter().enumerate() {
        let mut acc = 0u64;
        for s in shares.iter_mut().take(n - 1) {
            let r: u64 = rng.gen();
            s[i] = r;
            acc = acc.wrapping_add(r);
        }
        shares[n - 1][i] = encode_fixed(v).wrapping_sub(acc);
    }
    shares
}

/// Reconstructs the float vector from a complete set of share vectors.
pub fn reconstruct(shares: &[Vec<u64>]) -> Vec<f32> {
    assert!(!shares.is_empty(), "no shares");
    let len = shares[0].len();
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let mut acc = 0u64;
        for s in shares {
            assert_eq!(s.len(), len, "ragged shares");
            acc = acc.wrapping_add(s[i]);
        }
        out.push(decode_fixed(acc));
    }
    out
}

/// Securely aggregates client parameter maps: each client's tensors are
/// additively shared among all clients, every client sums the shares it
/// holds, and the server adds those partial sums — learning only the total.
///
/// Returns the aggregated (summed, not averaged) [`ParamMap`]. This is the
/// simulation of the full protocol: the information flow (who could see
/// what) matches, while transport is in-process.
pub fn secure_aggregate(client_params: &[ParamMap], rng: &mut impl Rng) -> ParamMap {
    assert!(!client_params.is_empty(), "no clients");
    let n = client_params.len();
    let template = &client_params[0];
    let mut result = template.zeros_like();
    let names: Vec<String> = template.names().map(str::to_string).collect();
    for name in &names {
        let len = template.get(name).expect("key").numel();
        // per-peer accumulated shares (what peer j would hold)
        let mut peer_sums = vec![vec![0u64; len]; n];
        for cp in client_params {
            let t = cp
                .get(name)
                .unwrap_or_else(|| panic!("client missing key {name}"));
            let shares = share(t.data(), n, rng);
            for (peer, sh) in peer_sums.iter_mut().zip(&shares) {
                for (a, b) in peer.iter_mut().zip(sh) {
                    *a = a.wrapping_add(*b);
                }
            }
        }
        // server adds the peers' partial sums
        let mut total = vec![0u64; len];
        for peer in &peer_sums {
            for (a, b) in total.iter_mut().zip(peer) {
                *a = a.wrapping_add(*b);
            }
        }
        let out = result.get_mut(name).expect("key");
        for (dst, v) in out.data_mut().iter_mut().zip(&total) {
            *dst = decode_fixed(*v);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_point_roundtrip() {
        for v in [0.0f32, 1.0, -1.0, 3.25, -1234.5, 0.0001] {
            let r = decode_fixed(encode_fixed(v));
            assert!((r - v).abs() < 1e-3, "{v} -> {r}");
        }
    }

    #[test]
    fn share_reconstruct_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let values = vec![1.5f32, -2.25, 0.0, 100.0];
        for n in [1usize, 2, 5, 10] {
            let shares = share(&values, n, &mut rng);
            assert_eq!(shares.len(), n);
            let rec = reconstruct(&shares);
            for (a, b) in values.iter().zip(&rec) {
                assert!((a - b).abs() < 1e-3, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn single_share_leaks_nothing_statistically() {
        // a single share of a constant vector should look uniform: its mean
        // across many draws must not concentrate near the encoded value
        let mut rng = StdRng::seed_from_u64(2);
        let values = vec![7.0f32];
        let mut zero_hits = 0;
        for _ in 0..200 {
            let shares = share(&values, 3, &mut rng);
            // first share is raw randomness
            if (decode_fixed(shares[0][0]) - 7.0).abs() < 1.0 {
                zero_hits += 1;
            }
        }
        assert!(
            zero_hits < 10,
            "shares cluster around the secret: {zero_hits}"
        );
    }

    #[test]
    fn secure_aggregate_equals_plain_sum() {
        let mut rng = StdRng::seed_from_u64(3);
        let mk = |vals: &[f32]| {
            let mut p = ParamMap::new();
            p.insert("w", Tensor::from_vec(vec![vals.len()], vals.to_vec()));
            p
        };
        let clients = vec![mk(&[1.0, -2.0]), mk(&[0.5, 0.5]), mk(&[-3.25, 4.0])];
        let agg = secure_aggregate(&clients, &mut rng);
        let w = agg.get("w").unwrap();
        assert!((w.data()[0] - (1.0 + 0.5 - 3.25)).abs() < 1e-3);
        assert!((w.data()[1] - (-2.0 + 0.5 + 4.0)).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "no clients")]
    fn empty_aggregation_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = secure_aggregate(&[], &mut rng);
    }
}
