//! Byzantine robustness (§3.6): a model-replacement attacker wrecks plain
//! FedAvg; swapping the aggregator to multi-Krum defends, with no other
//! change to the course.
//!
//! ```text
//! cargo run --release --example byzantine
//! ```

use fedscope::attack::backdoor::label_flip;
use fedscope::attack::malicious::{AttackMode, MaliciousTrainer};
use fedscope::core::aggregator::Krum;
use fedscope::core::config::FlConfig;
use fedscope::core::course::CourseBuilder;
use fedscope::core::trainer::{share_all, LocalTrainer, TrainConfig};
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::tensor::model::logistic_regression;
use fedscope::tensor::optim::SgdConfig;

fn run(use_krum: bool) -> f32 {
    let data = twitter_like(&TwitterConfig {
        num_clients: 12,
        per_client: 40,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 20,
        concurrency: 12,
        local_steps: 6,
        batch_size: 4,
        sgd: SgdConfig::with_lr(0.3),
        eval_every: 5,
        seed: 4,
        ..Default::default()
    };
    let mut builder = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    // client 0 is malicious: it trains on label-flipped data and boosts its
    // update so averaging replaces the global model with the flipped one
    .trainer_factory(Box::new(|i, model, mut split, cfg| {
        if i == 0 {
            // swap classes 0 and 1 (via a temporary index, never trained on)
            label_flip(&mut split.train, 1, 2);
            label_flip(&mut split.train, 0, 1);
            label_flip(&mut split.train, 2, 0);
        }
        let inner = LocalTrainer::new(
            model,
            split,
            TrainConfig {
                local_steps: cfg.local_steps,
                batch_size: cfg.batch_size,
                sgd: cfg.sgd,
            },
            share_all(),
            cfg.seed ^ (i as u64 + 1),
        );
        if i == 0 {
            Box::new(MaliciousTrainer::new(
                inner,
                AttackMode::ModelReplacement { n_participants: 12 },
                0xbad,
            ))
        } else {
            Box::new(inner)
        }
    }));
    if use_krum {
        builder = builder.aggregator(Box::new(Krum::multi(1, 6)));
    }
    let mut runner = builder.build();
    let report = runner.run();
    report
        .history
        .last()
        .map(|r| r.metrics.accuracy)
        .unwrap_or(0.0)
}

fn main() {
    let fedavg_acc = run(false);
    let krum_acc = run(true);
    println!("under model replacement by 1 of 12 clients:");
    println!("  FedAvg aggregation:    final accuracy {fedavg_acc:.3}");
    println!("  multi-Krum aggregation: final accuracy {krum_acc:.3}");
    assert!(
        krum_acc > fedavg_acc,
        "Krum should defend where FedAvg fails"
    );
}
