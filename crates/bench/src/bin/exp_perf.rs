//! **fs-perf harness** — the persisted performance baseline for the
//! parallel client-execution engine and the fs-tensor kernel overhaul.
//!
//! Two measurement families, both written to `BENCH_perf.json` (repo root):
//!
//! * **Engine grid** — every (workload, strategy) cell runs the same seeded
//!   course twice, serial (`parallelism = 1`) and parallel
//!   (`parallelism = --threads`), timing each. The two [`CourseReport`]s are
//!   asserted equal *in-binary* — the determinism contract is enforced at
//!   measurement time, not just by the test suite — and the comparison is
//!   persisted (`reports_identical`), where the `--validate` gate rejects
//!   `false`.
//! * **Matmul micro-bench** — best-of-N timings of the naive triple loop vs
//!   the blocked/SIMD kernel on the criterion shapes, re-measured outside
//!   criterion so CI can gate on them without the harness.
//!
//! Wall-clock speedup is bounded by the host's core count, which is stamped
//! into the snapshot as `cores`: on a single-core machine the parallel run
//! degenerates to inline execution and `speedup` hovers around 1.0 — that is
//! the honest measurement, not a failure. The determinism assertion holds at
//! any core count.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_perf                  # full grid
//! cargo run -p fs-bench --release --bin exp_perf -- --quick      # CI grid
//! cargo run -p fs-bench --release --bin exp_perf -- --validate   # gate only
//! ```

use fs_bench::args::ExpArgs;
use fs_bench::output::render_table;
use fs_bench::strategies::Strategy;
use fs_bench::sys::peak_rss_mb;
use fs_bench::workloads::{cifar, femnist, twitter, Workload};
use fs_core::runner::CourseReport;
use fs_monitor::export::{validate_perf_snapshot, MatmulRow, PerfRow, PerfSnapshot};
use fs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::time::Instant;

const BENCH_PATH: &str = "BENCH_perf.json";

fn workload_by_name(name: &str, seed: u64) -> Workload {
    match name {
        "femnist" => femnist(seed),
        "cifar" => cifar(seed),
        "twitter" => twitter(seed),
        other => unreachable!("args module vets workload names, got {other}"),
    }
}

/// Runs one seeded course at the given parallelism and times it.
fn time_course(
    wl: &Workload,
    strat: Strategy,
    rounds: u64,
    parallelism: usize,
) -> (f64, CourseReport) {
    let mut cfg = strat.configure(wl);
    cfg.target_accuracy = None;
    cfg.total_rounds = rounds;
    cfg.parallelism = parallelism;
    let mut runner = wl.build(cfg);
    let start = Instant::now();
    let report = runner.run();
    (start.elapsed().as_secs_f64() * 1e3, report)
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(vec![rows, cols], data)
}

/// Best-of-`reps` nanoseconds for one closure (min damps scheduler noise,
/// which only ever makes runs slower).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e9);
    }
    best
}

fn bench_matmul(quick: bool) -> Vec<MatmulRow> {
    let mut rng = StdRng::seed_from_u64(7);
    let reps = if quick { 5 } else { 20 };
    let mut rows = Vec::new();
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (128, 256, 128)] {
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let naive_ns = best_of(reps, || {
            std::hint::black_box(std::hint::black_box(&a).matmul_naive(std::hint::black_box(&b)));
        });
        let blocked_ns = best_of(reps, || {
            std::hint::black_box(std::hint::black_box(&a).matmul(std::hint::black_box(&b)));
        });
        rows.push(MatmulRow {
            m,
            k,
            n,
            naive_ns,
            blocked_ns,
            speedup: naive_ns / blocked_ns,
        });
    }
    rows
}

fn main() {
    let args = ExpArgs::parse();

    // --validate: CI gate mode — parse the existing snapshot and exit
    if args.has_flag("validate") {
        let text = fs::read_to_string(BENCH_PATH)
            .unwrap_or_else(|e| panic!("cannot read {BENCH_PATH}: {e}"));
        let snap = validate_perf_snapshot(&text)
            .unwrap_or_else(|e| panic!("{BENCH_PATH} failed validation: {e}"));
        println!(
            "{BENCH_PATH} valid: {} engine rows, {} matmul rows ({} cores)",
            snap.rows.len(),
            snap.matmul.len(),
            snap.cores
        );
        return;
    }

    let seed = args.seed_or(7);
    let quick = args.quick;
    let threads = args.threads_or(4);
    let workload_names = if quick {
        args.workloads_or(&["femnist"])
    } else {
        args.workloads_or(&["femnist", "cifar", "twitter"])
    };
    let strategies = if quick {
        args.strategies_or(vec![Strategy::SyncVanilla, Strategy::GoalAggrUnif])
    } else {
        args.strategies_or(Strategy::table1())
    };
    let rounds = args.rounds_or(if quick { 6 } else { 30 });

    let mut snapshot = PerfSnapshot::new("exp_perf");
    let mut table: Vec<Vec<String>> = Vec::new();

    for wl_name in &workload_names {
        let wl = workload_by_name(wl_name, seed);
        for &strat in &strategies {
            let rounds = if strat.is_async() {
                // async strategies count aggregations, not sync rounds; keep
                // the virtual course comparable in size
                rounds * 2
            } else {
                rounds
            };
            let (serial_ms, serial_report) = time_course(&wl, strat, rounds, 1);
            let (parallel_ms, parallel_report) = time_course(&wl, strat, rounds, threads);
            let identical = serial_report == parallel_report;
            // fail at measurement time too — a perf number from a diverged
            // run is worthless
            assert!(
                identical,
                "{wl_name}/{}: serial and parallel reports diverged",
                strat.label()
            );
            let speedup = serial_ms / parallel_ms;
            eprintln!(
                "  {wl_name} / {}: serial {serial_ms:.1} ms, {threads}-thread \
                 {parallel_ms:.1} ms ({speedup:.2}x), reports identical",
                strat.label()
            );
            table.push(vec![
                wl_name.to_string(),
                strat.label().to_string(),
                format!("{serial_ms:.1}"),
                format!("{parallel_ms:.1}"),
                format!("{speedup:.2}x"),
                "yes".to_string(),
            ]);
            snapshot.rows.push(PerfRow {
                workload: wl_name.to_string(),
                strategy: strat.label().to_string(),
                rounds: serial_report.rounds,
                threads,
                serial_ms,
                parallel_ms,
                speedup,
                reports_identical: identical,
            });
        }
    }

    snapshot.matmul = bench_matmul(quick);
    for r in &snapshot.matmul {
        eprintln!(
            "  matmul {}x{}x{}: naive {:.0} ns, blocked {:.0} ns ({:.2}x)",
            r.m, r.k, r.n, r.naive_ns, r.blocked_ns, r.speedup
        );
    }

    println!(
        "{}",
        render_table(
            &[
                "workload",
                "strategy",
                "serial ms",
                &format!("{threads}-thread ms"),
                "speedup",
                "identical"
            ],
            &table
        )
    );
    let matmul_table: Vec<Vec<String>> = snapshot
        .matmul
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}x{}", r.m, r.k, r.n),
                format!("{:.0}", r.naive_ns),
                format!("{:.0}", r.blocked_ns),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["shape", "naive ns", "blocked ns", "speedup"],
            &matmul_table
        )
    );

    fs::write(BENCH_PATH, snapshot.to_json()).expect("write BENCH_perf.json");
    let reread = fs::read_to_string(BENCH_PATH).expect("re-read BENCH_perf.json");
    validate_perf_snapshot(&reread).expect("snapshot round-trips through its own validator");
    println!(
        "wrote {BENCH_PATH}: {} engine rows, {} matmul rows ({} cores)",
        snapshot.rows.len(),
        snapshot.matmul.len(),
        snapshot.cores
    );

    // report process peak RSS (Linux only) and honor an optional budget
    if let Some(mb) = peak_rss_mb() {
        println!("peak RSS: {mb:.0} MB");
        if let Some(budget) = args.mem_budget_mb {
            if mb > budget as f64 {
                eprintln!("memory budget exceeded: peak RSS {mb:.0} MB > budget {budget} MB");
                std::process::exit(1);
            }
        }
    }
}
