//! Per-client device profiles and the fleet generator.
//!
//! The paper estimates client execution times from FedScale device traces; we
//! substitute log-normal compute-speed and bandwidth draws, which reproduce
//! the long-tailed "stragglers exist" behaviour that the asynchronous
//! experiments (§5.3.1) depend on. Each client also gets a crash probability
//! (device failures / dropouts) and a *responsiveness group* (speed quantile)
//! used by the group sampler.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

/// Static system profile of one client device.
#[derive(Clone, Copy, Debug)]
pub struct DeviceProfile {
    /// Local training throughput, in examples per second.
    pub compute_speed: f64,
    /// Link bandwidth, in bytes per second (used for both directions).
    pub bandwidth: f64,
    /// Probability that the device crashes during a round and never replies.
    pub crash_prob: f64,
    /// Responsiveness group index (0 = fastest quantile).
    pub group: usize,
}

impl DeviceProfile {
    /// Seconds of compute needed to process `examples` training examples.
    pub fn compute_secs(&self, examples: usize) -> f64 {
        examples as f64 / self.compute_speed.max(1e-9)
    }

    /// Seconds to move `bytes` across the link once.
    pub fn comm_secs(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth.max(1e-9)
    }

    /// Total response latency for one round: download + compute + upload.
    pub fn round_secs(&self, examples: usize, payload_bytes: usize) -> f64 {
        2.0 * self.comm_secs(payload_bytes) + self.compute_secs(examples)
    }
}

/// Configuration for generating a heterogeneous device fleet.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of client devices.
    pub num_clients: usize,
    /// Median compute speed (examples/second).
    pub median_speed: f64,
    /// Log-normal sigma of the speed distribution (larger = more stragglers).
    pub speed_sigma: f64,
    /// Median bandwidth (bytes/second).
    pub median_bandwidth: f64,
    /// Log-normal sigma of the bandwidth distribution.
    pub bandwidth_sigma: f64,
    /// Per-round crash probability applied to every device.
    pub crash_prob: f64,
    /// Number of responsiveness groups (speed quantiles).
    pub num_groups: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            num_clients: 100,
            median_speed: 50.0,
            speed_sigma: 1.0,
            median_bandwidth: 50_000.0,
            bandwidth_sigma: 0.7,
            crash_prob: 0.0,
            num_groups: 4,
            seed: 17,
        }
    }
}

/// A generated set of device profiles, indexed by client id - 1.
#[derive(Clone, Debug)]
pub struct Fleet {
    profiles: Vec<DeviceProfile>,
}

impl Fleet {
    /// Generates a fleet from the configuration (deterministic in the seed).
    pub fn generate(cfg: &FleetConfig) -> Self {
        assert!(cfg.num_clients > 0, "fleet needs at least one client");
        assert!(cfg.num_groups > 0, "fleet needs at least one group");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let speed_dist =
            LogNormal::new(cfg.median_speed.ln(), cfg.speed_sigma).expect("valid lognormal");
        let bw_dist = LogNormal::new(cfg.median_bandwidth.ln(), cfg.bandwidth_sigma)
            .expect("valid lognormal");
        let mut profiles: Vec<DeviceProfile> = (0..cfg.num_clients)
            .map(|_| DeviceProfile {
                compute_speed: speed_dist.sample(&mut rng),
                bandwidth: bw_dist.sample(&mut rng),
                crash_prob: cfg.crash_prob,
                group: 0,
            })
            .collect();
        // assign groups by expected round latency quantile (fast group = 0)
        let mut order: Vec<usize> = (0..cfg.num_clients).collect();
        order.sort_by(|&a, &b| {
            let la = profiles[a].round_secs(100, 100_000);
            let lb = profiles[b].round_secs(100, 100_000);
            la.partial_cmp(&lb).expect("finite latency")
        });
        let per_group = cfg.num_clients.div_ceil(cfg.num_groups);
        for (rank, &idx) in order.iter().enumerate() {
            profiles[idx].group = (rank / per_group).min(cfg.num_groups - 1);
        }
        Self { profiles }
    }

    /// Builds a fleet from explicit profiles (useful in tests).
    pub fn from_profiles(profiles: Vec<DeviceProfile>) -> Self {
        Self { profiles }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// `true` when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Profile of client `client_id` (ids start at 1; the server is 0).
    pub fn profile(&self, client_id: u32) -> &DeviceProfile {
        assert!(client_id >= 1, "client ids start at 1");
        &self.profiles[(client_id - 1) as usize]
    }

    /// All profiles, indexed by client id - 1.
    pub fn profiles(&self) -> &[DeviceProfile] {
        &self.profiles
    }

    /// Samples whether client `client_id` crashes this round.
    pub fn crashes(&self, client_id: u32, rng: &mut impl Rng) -> bool {
        rng.gen::<f64>() < self.profile(client_id).crash_prob
    }

    /// Client ids belonging to responsiveness group `g`.
    pub fn group_members(&self, g: usize) -> Vec<u32> {
        self.profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.group == g)
            .map(|(i, _)| i as u32 + 1)
            .collect()
    }

    /// Number of distinct responsiveness groups present.
    pub fn num_groups(&self) -> usize {
        self.profiles
            .iter()
            .map(|p| p.group)
            .max()
            .map_or(0, |g| g + 1)
    }

    /// Mean response speed (1 / expected latency) of each client, used by the
    /// responsiveness-weighted sampler.
    pub fn response_speeds(&self, examples: usize, payload_bytes: usize) -> Vec<f64> {
        self.profiles
            .iter()
            .map(|p| 1.0 / p.round_secs(examples, payload_bytes).max(1e-9))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_decomposition() {
        let p = DeviceProfile {
            compute_speed: 10.0,
            bandwidth: 1000.0,
            crash_prob: 0.0,
            group: 0,
        };
        assert!((p.compute_secs(20) - 2.0).abs() < 1e-9);
        assert!((p.comm_secs(500) - 0.5).abs() < 1e-9);
        assert!((p.round_secs(20, 500) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_deterministic_and_heterogeneous() {
        let cfg = FleetConfig {
            num_clients: 50,
            ..Default::default()
        };
        let a = Fleet::generate(&cfg);
        let b = Fleet::generate(&cfg);
        assert_eq!(a.len(), 50);
        for i in 0..50 {
            assert_eq!(a.profiles()[i].compute_speed, b.profiles()[i].compute_speed);
        }
        let speeds: Vec<f64> = a.profiles().iter().map(|p| p.compute_speed).collect();
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 3.0, "fleet not heterogeneous: {min}..{max}");
    }

    #[test]
    fn groups_partition_fleet_by_speed() {
        let cfg = FleetConfig {
            num_clients: 40,
            num_groups: 4,
            ..Default::default()
        };
        let f = Fleet::generate(&cfg);
        let total: usize = (0..4).map(|g| f.group_members(g).len()).sum();
        assert_eq!(total, 40);
        assert_eq!(f.num_groups(), 4);
        // group 0 should be faster on average than group 3
        let avg = |g: usize| {
            let m = f.group_members(g);
            m.iter()
                .map(|&c| f.profile(c).round_secs(100, 100_000))
                .sum::<f64>()
                / m.len() as f64
        };
        assert!(
            avg(0) < avg(3),
            "group 0 {} not faster than group 3 {}",
            avg(0),
            avg(3)
        );
    }

    #[test]
    fn crash_probability_extremes() {
        let mut profiles = vec![
            DeviceProfile {
                compute_speed: 1.0,
                bandwidth: 1.0,
                crash_prob: 0.0,
                group: 0,
            },
            DeviceProfile {
                compute_speed: 1.0,
                bandwidth: 1.0,
                crash_prob: 1.0,
                group: 0,
            },
        ];
        profiles[0].group = 0;
        let f = Fleet::from_profiles(profiles);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!f.crashes(1, &mut rng));
        assert!(f.crashes(2, &mut rng));
    }

    #[test]
    fn response_speeds_order_matches_latency() {
        let f = Fleet::from_profiles(vec![
            DeviceProfile {
                compute_speed: 100.0,
                bandwidth: 1e6,
                crash_prob: 0.0,
                group: 0,
            },
            DeviceProfile {
                compute_speed: 1.0,
                bandwidth: 1e3,
                crash_prob: 0.0,
                group: 1,
            },
        ]);
        let s = f.response_speeds(100, 10_000);
        assert!(s[0] > s[1]);
    }
}
